"""Tests for per-layer occupancy propagation (repro.nn.occupancy)."""

from __future__ import annotations

import pytest

from repro.models import build_network
from repro.nn import (
    LayerKind,
    LayerSpec,
    OccupancyProfile,
    layer_output_occupancy,
    propagate_occupancy,
)


def _conv(name, kind=LayerKind.CONV2D, k=3, stride=1, sparsity=0.0, timesteps=1):
    return LayerSpec(
        name=name,
        kind=kind,
        in_channels=2,
        out_channels=4,
        in_height=32,
        in_width=32,
        kernel_size=k,
        stride=stride,
        timesteps=timesteps,
        activation_sparsity=sparsity,
    )


class TestLayerOutputOccupancy:
    def test_dilation_never_decreases_support(self):
        # A K x K receptive field can only grow the active-site fraction.
        for kind in (LayerKind.CONV2D, LayerKind.CONV_LIF, LayerKind.POOL):
            spec = _conv("l", kind=kind, k=3)
            for d in (0.0, 0.01, 0.1, 0.5, 0.9, 1.0):
                assert layer_output_occupancy(spec, d) >= d - 1e-15

    def test_pooling_dilates_like_conv(self):
        pool = _conv("p", kind=LayerKind.POOL, k=2)
        d = 0.2
        assert layer_output_occupancy(pool, d) == pytest.approx(1 - (1 - d) ** 4)

    def test_monotone_in_input_density(self):
        spec = _conv("l", k=3)
        previous = -1.0
        for d in (0.0, 0.05, 0.1, 0.3, 0.6, 1.0):
            value = layer_output_occupancy(spec, d)
            assert value >= previous
            previous = value

    def test_fc_mixes_globally(self):
        fc = LayerSpec(name="fc", kind=LayerKind.FC, in_channels=8, out_channels=4)
        assert layer_output_occupancy(fc, 1e-6) == 1.0
        assert layer_output_occupancy(fc, 0.0) == 0.0

    def test_elementwise_preserves_support(self):
        ew = _conv("e", kind=LayerKind.ELEMENTWISE)
        assert layer_output_occupancy(ew, 0.37) == pytest.approx(0.37)

    def test_deconv_spreads_over_upsampled_grid(self):
        deconv = _conv("d", kind=LayerKind.DECONV2D, k=3, stride=2)
        d = 0.2
        assert layer_output_occupancy(deconv, d) == pytest.approx(
            1 - (1 - d) ** (9 / 4)
        )

    def test_empty_input_stays_empty_through_local_layers(self):
        for kind in (LayerKind.CONV2D, LayerKind.POOL, LayerKind.DECONV2D):
            assert layer_output_occupancy(_conv("l", kind=kind), 0.0) == 0.0


class TestPropagateOccupancy:
    def test_first_entry_is_the_measured_input(self):
        specs = [_conv("a", sparsity=0.95), _conv("b", sparsity=0.85)]
        entries = propagate_occupancy(specs, 0.0123)
        # The input density is ground truth: the first layer's modelled
        # sparsity must not rewrite it.
        assert entries[0] == pytest.approx(0.0123)

    def test_activation_sparsification_caps_dilation(self):
        specs = [_conv("a"), _conv("b", sparsity=0.85)]
        entries = propagate_occupancy(specs, 0.5)
        dilated = layer_output_occupancy(specs[0], 0.5)
        assert entries[1] == pytest.approx(dilated * 0.15)
        assert entries[1] <= 0.15 + 1e-12  # never above the modelled activity

    def test_monotone_in_input_density_at_every_layer(self):
        # Profile monotonicity under pooling/activation layers: a denser
        # input can never produce a sparser layer anywhere in the chain.
        specs = [
            _conv("a", kind=LayerKind.CONV_LIF, sparsity=0.95, timesteps=3),
            _conv("p", kind=LayerKind.POOL, k=2, sparsity=0.0),
            _conv("b", kind=LayerKind.CONV_LIF, sparsity=0.85, timesteps=3),
            _conv("c", sparsity=0.3),
        ]
        low = propagate_occupancy(specs, 0.01)
        high = propagate_occupancy(specs, 0.2)
        for lo, hi in zip(low, high):
            assert lo <= hi + 1e-15

    def test_profiles_converge_deep_in_a_zoo_network(self):
        network = build_network("spikeflownet", 64, 64)
        specs = [s for s in network.layers() if s.kind.is_compute]
        a = propagate_occupancy(specs, 0.05)
        b = propagate_occupancy(specs, 0.12)
        assert abs(a[0] - b[0]) > 0.05  # inputs genuinely differ
        # By the deep half of the network the propagated occupancies sit
        # within one default bucket width (1/64) of each other — the
        # convergence the layered cost stack's sharing relies on.
        for x, y in zip(a[len(a) // 2 :], b[len(b) // 2 :]):
            assert abs(x - y) < 1.0 / 64.0

    def test_layer_graph_delegates(self):
        network = build_network("dotie", 64, 64)
        specs = [s for s in network.layers() if s.kind.is_compute]
        assert network.occupancy_profile(0.07) == propagate_occupancy(specs, 0.07)


class TestOccupancyProfile:
    def test_flat_profile_shape(self):
        profile = OccupancyProfile.flat(0.25, 4)
        assert profile.entries == (0.25, None, None, None)
        assert profile.is_flat
        assert len(profile) == 4

    def test_flat_empty(self):
        assert OccupancyProfile.flat(0.5, 0).entries == ()

    def test_combine_is_weighted_mean(self):
        a = OccupancyProfile((0.1, 0.2))
        b = OccupancyProfile((0.3, 0.4))
        combined = OccupancyProfile.combine([a, b], weights=[3, 1])
        assert combined.entries[0] == pytest.approx(0.15)
        assert combined.entries[1] == pytest.approx(0.25)

    def test_combine_preserves_flat_none_entries(self):
        a = OccupancyProfile.flat(0.1, 3)
        b = OccupancyProfile.flat(0.3, 3)
        combined = OccupancyProfile.combine([a, b])
        assert combined.entries == (pytest.approx(0.2), None, None)

    def test_combine_rejects_mixed_flat_and_propagated(self):
        # Silently collapsing a propagated member's measured occupancy to
        # "modelled sparsity" would miscost the batch — mixing is an error.
        with pytest.raises(ValueError):
            OccupancyProfile.combine(
                [OccupancyProfile((0.1, None)), OccupancyProfile((0.1, 0.2))]
            )

    def test_combine_validation(self):
        with pytest.raises(ValueError):
            OccupancyProfile.combine([])
        with pytest.raises(ValueError):
            OccupancyProfile.combine(
                [OccupancyProfile((0.1,)), OccupancyProfile((0.1, 0.2))]
            )
        with pytest.raises(ValueError):
            OccupancyProfile.combine([OccupancyProfile((0.1,))], weights=[0.0])
        with pytest.raises(ValueError):
            OccupancyProfile.combine([OccupancyProfile((0.1,))], weights=[1, 2])

    def test_bucketed_applies_per_entry(self):
        profile = OccupancyProfile((0.013, None, 0.5))
        bucketed = profile.bucketed(lambda v: None if v is None else round(v, 1))
        assert bucketed.entries == (0.0, None, 0.5)

    def test_equality_and_hash(self):
        assert OccupancyProfile((0.1, None)) == OccupancyProfile((0.1, None))
        assert hash(OccupancyProfile((0.1, None))) == hash(
            OccupancyProfile((0.1, None))
        )
        assert OccupancyProfile((0.1,)) != OccupancyProfile((0.2,))
