"""Tests for graph-aware occupancy propagation (repro.nn.occupancy).

Covers the graph walker against every zoo network: serial nets must be
bit-identical to the chain oracle, DAG join nodes must see the combined
predecessor support (union for element-wise fusion, channel-weighted mean
for concat-style skips), two-stream networks must give *every* source the
measured input, and profiles must stay monotone in input density.
"""

from __future__ import annotations

import pytest

from repro.models import available_networks, build_network
from repro.nn import (
    LayerGraph,
    LayerKind,
    LayerSpec,
    combine_supports,
    layer_output_occupancy,
    propagate_occupancy_chain,
    propagate_occupancy_graph,
)

ALL_NETWORKS = available_networks()
DAG_NETWORKS = [
    name
    for name in ALL_NETWORKS
    if any(
        len(build_network(name, 64, 64).predecessors(n)) > 1
        for n in build_network(name, 64, 64).layer_names()
    )
]
SERIAL_NETWORKS = [name for name in ALL_NETWORKS if name not in DAG_NETWORKS]


def _compute_names(graph: LayerGraph):
    return [n for n in graph.layer_names() if graph.layer(n).kind.is_compute]


def _compute_preds(graph: LayerGraph, name: str):
    return [p for p in graph.predecessors(name) if graph.layer(p).kind.is_compute]


def _conv(name, kind=LayerKind.CONV2D, sparsity=0.3):
    return LayerSpec(
        name=name,
        kind=kind,
        in_channels=4,
        out_channels=4,
        in_height=16,
        in_width=16,
        kernel_size=3,
        activation_sparsity=sparsity,
    )


class TestCombineSupports:
    def test_elementwise_union_is_independent_site(self):
        consumer = _conv("fuse", kind=LayerKind.ELEMENTWISE)
        combined = combine_supports(consumer, [0.3, 0.5], [1.0, 1.0])
        assert combined == pytest.approx(1.0 - 0.7 * 0.5)

    def test_union_strictly_grows_each_active_branch(self):
        consumer = _conv("fuse", kind=LayerKind.ELEMENTWISE)
        for supports in ([0.1, 0.4], [0.25, 0.25, 0.25]):
            combined = combine_supports(consumer, supports, [1.0] * len(supports))
            for branch in supports:
                assert combined > branch

    def test_concat_join_is_channel_weighted_mean(self):
        consumer = _conv("dec")
        combined = combine_supports(consumer, [0.2, 0.6], [3.0, 1.0])
        assert combined == pytest.approx(0.3)

    def test_validation(self):
        consumer = _conv("dec")
        with pytest.raises(ValueError):
            combine_supports(consumer, [0.1], [1.0, 2.0])
        with pytest.raises(ValueError):
            combine_supports(consumer, [], [])
        with pytest.raises(ValueError):
            combine_supports(consumer, [0.1, 0.2], [0.0, 0.0])


class TestGraphPropagation:
    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_profile_covers_every_compute_layer(self, name):
        net = build_network(name, 64, 64)
        entries = propagate_occupancy_graph(net, 0.08)
        assert len(entries) == net.num_layers
        assert all(0.0 <= e <= 1.0 for e in entries)

    @pytest.mark.parametrize("name", SERIAL_NETWORKS)
    def test_serial_zoo_nets_bit_identical_to_chain(self, name):
        net = build_network(name, 64, 64)
        specs = [s for s in net.layers() if s.kind.is_compute]
        for density in (1e-4, 0.03, 0.1, 0.5, 1.0):
            assert propagate_occupancy_graph(net, density) == propagate_occupancy_chain(
                specs, density
            )

    def test_synthetic_serial_chain_bit_identical_to_chain(self):
        g = LayerGraph("chain")
        specs = [
            _conv("a", kind=LayerKind.CONV_LIF, sparsity=0.95),
            _conv("p", kind=LayerKind.POOL, sparsity=0.0),
            _conv("b", kind=LayerKind.CONV_LIF, sparsity=0.85),
            _conv("c", sparsity=0.3),
        ]
        g.chain(specs)
        for density in (0.01, 0.2, 0.9):
            assert propagate_occupancy_graph(g, density) == propagate_occupancy_chain(
                specs, density
            )

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_monotone_in_input_density(self, name):
        net = build_network(name, 64, 64)
        low = propagate_occupancy_graph(net, 0.02)
        high = propagate_occupancy_graph(net, 0.15)
        for lo, hi in zip(low, high):
            assert lo <= hi + 1e-15

    @pytest.mark.parametrize("name", DAG_NETWORKS)
    def test_join_nodes_see_combined_predecessor_support(self, name):
        # Acceptance criterion: every multi-input node's entry equals the
        # independent-site combination of its predecessors' dilated
        # supports, scaled by the node's own firing fraction.
        net = build_network(name, 64, 64)
        names = _compute_names(net)
        entries = dict(zip(names, propagate_occupancy_graph(net, 0.1)))
        joins = [n for n in names if len(_compute_preds(net, n)) > 1]
        assert joins, f"{name} should have join nodes"
        for join in joins:
            spec = net.layer(join)
            preds = _compute_preds(net, join)
            dilated = [
                layer_output_occupancy(net.layer(p), entries[p]) for p in preds
            ]
            expected = combine_supports(
                spec,
                dilated,
                [float(max(net.layer(p).out_channels, 1)) for p in preds],
            ) * (1.0 - spec.activation_sparsity)
            assert entries[join] == pytest.approx(expected, abs=1e-15)

    @pytest.mark.parametrize("name", DAG_NETWORKS)
    def test_elementwise_joins_dominate_every_branch(self, name):
        # Union joins see *at least* each branch alone — strictly more
        # when several branches are active.  (Concat-style skips are a
        # channel-weighted mean and sit between their branches instead.)
        net = build_network(name, 64, 64)
        names = _compute_names(net)
        entries = dict(zip(names, propagate_occupancy_graph(net, 0.1)))
        for n in names:
            spec = net.layer(n)
            preds = _compute_preds(net, n)
            if len(preds) <= 1 or spec.kind is not LayerKind.ELEMENTWISE:
                continue
            dilated = [
                layer_output_occupancy(net.layer(p), entries[p]) for p in preds
            ]
            fused_support = entries[n] / (1.0 - spec.activation_sparsity)
            for branch in dilated:
                assert fused_support > branch - 1e-15
                if all(d > 0 for d in dilated):
                    assert fused_support > branch

    @pytest.mark.parametrize("name", DAG_NETWORKS)
    def test_concat_joins_sit_between_their_branches(self, name):
        net = build_network(name, 64, 64)
        names = _compute_names(net)
        entries = dict(zip(names, propagate_occupancy_graph(net, 0.1)))
        for n in names:
            spec = net.layer(n)
            preds = _compute_preds(net, n)
            if len(preds) <= 1 or spec.kind is LayerKind.ELEMENTWISE:
                continue
            dilated = [
                layer_output_occupancy(net.layer(p), entries[p]) for p in preds
            ]
            support = entries[n] / (1.0 - spec.activation_sparsity)
            assert min(dilated) - 1e-15 <= support <= max(dilated) + 1e-15

    @pytest.mark.parametrize("name", ["fusionflownet", "halsie"])
    def test_every_source_sees_the_measured_input(self, name):
        # The chain walk gave the second stream head a *dilated* occupancy
        # (whatever spec preceded it in topo order); the graph walker hands
        # every source the measured input density.
        net = build_network(name, 64, 64)
        names = _compute_names(net)
        entries = dict(zip(names, propagate_occupancy_graph(net, 0.07)))
        sources = [n for n in names if not _compute_preds(net, n)]
        assert len(sources) >= 2, f"{name} should be two-stream"
        for source in sources:
            assert entries[source] == pytest.approx(0.07)

    def test_layer_graph_occupancy_profile_routes_through_graph(self):
        net = build_network("spikeflownet", 64, 64)
        assert net.occupancy_profile(0.09) == propagate_occupancy_graph(net, 0.09)


class TestWithFiringFractions:
    def test_returns_calibrated_copy(self):
        net = build_network("spikeflownet", 64, 64)
        before = net.layer("enc2").activation_sparsity
        calibrated = net.with_firing_fractions({"enc2": 0.4})
        assert calibrated.layer("enc2").activation_sparsity == pytest.approx(0.6)
        # The original graph is untouched.
        assert net.layer("enc2").activation_sparsity == before
        # Unnamed layers keep their configured sparsity.
        assert calibrated.layer("enc3").activation_sparsity == net.layer(
            "enc3"
        ).activation_sparsity

    def test_validation(self):
        net = build_network("dotie", 64, 64)
        with pytest.raises(KeyError):
            net.with_firing_fractions({"nope": 0.5})
        with pytest.raises(ValueError):
            net.with_firing_fractions({"spike_filter": 0.0})
        with pytest.raises(ValueError):
            net.with_firing_fractions({"spike_filter": 1.5})
