"""Tests for the surrogate estimators and the accuracy evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events import generate_sequence
from repro.frames import discretized_event_bins
from repro.metrics import average_endpoint_error, box_iou, mean_iou
from repro.nn import (
    DepthSurrogate,
    FlowSurrogate,
    Precision,
    SegmentationSurrogate,
    TaskAccuracyEvaluator,
    TrackingSurrogate,
    map_layer_precisions_to_stages,
    surrogate_for_task,
)


@pytest.fixture(scope="module")
def bars_bins():
    seq = generate_sequence("calibration_bars", scale=0.25, duration=0.4, seed=0, with_noise=False)
    t0, t1 = seq.frames[0].timestamp, seq.frames[1].timestamp
    bins = discretized_event_bins(seq.events, t0, t1, 8)
    return bins, seq.ground_truth[0]


class TestFlowSurrogate:
    def test_output_shapes(self, bars_bins):
        bins, _ = bars_bins
        result = FlowSurrogate().predict(bins)
        assert result.prediction.shape == (2,) + bins.shape[2:]
        assert result.valid_mask.shape == bins.shape[2:]

    def test_flow_direction_matches_motion(self):
        # Use a window spanning several frame intervals so the bars move by
        # multiple pixels; single-interval motion is sub-pixel on this scene.
        seq = generate_sequence("calibration_bars", scale=0.25, duration=0.4, seed=0, with_noise=False)
        t0 = seq.frames[0].timestamp
        t4 = seq.frames[4].timestamp
        bins = discretized_event_bins(seq.events, t0, t4, 8)
        gt = seq.ground_truth[0]
        result = FlowSurrogate().predict(bins)
        valid = result.valid_mask & (np.abs(gt.flow[0]) > 0) & (np.abs(result.prediction[0]) > 0.1)
        assert valid.any()
        agreement = np.sign(result.prediction[0][valid]) == np.sign(gt.flow[0][valid])
        assert agreement.mean() > 0.5

    def test_aee_is_reasonable(self, bars_bins):
        bins, gt = bars_bins
        result = FlowSurrogate().predict(bins)
        aee = average_endpoint_error(result.prediction, gt.flow, result.valid_mask)
        assert np.isfinite(aee)
        assert aee < 5.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            FlowSurrogate().predict(np.zeros((4, 3, 8, 8)))
        with pytest.raises(ValueError):
            FlowSurrogate(block_size=1)

    def test_wrong_precision_count_rejected(self, bars_bins):
        bins, _ = bars_bins
        with pytest.raises(ValueError):
            FlowSurrogate().predict(bins, [Precision.FP32])

    def test_empty_bins_give_no_valid_pixels(self):
        result = FlowSurrogate().predict(np.zeros((4, 2, 16, 16)))
        assert not result.valid_mask.any()


class TestSegmentationSurrogate:
    def test_binary_mask_output(self, bars_bins):
        bins, _ = bars_bins
        result = SegmentationSurrogate().predict(bins)
        assert set(np.unique(result.prediction)).issubset({0, 1})

    def test_foreground_detected_on_moving_objects(self):
        seq = generate_sequence("indoor_flying2", scale=0.2, seed=0)
        t0, t1 = seq.frames[0].timestamp, seq.frames[1].timestamp
        bins = discretized_event_bins(seq.events, t0, t1, 8)
        result = SegmentationSurrogate().predict(bins)
        gt = (seq.ground_truth[0].segmentation > 0).astype(int)
        miou = mean_iou(result.prediction, gt, 2)
        assert miou > 30.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SegmentationSurrogate(smoothing_radius=-1)
        with pytest.raises(ValueError):
            SegmentationSurrogate(threshold_scale=0.0)


class TestDepthAndTracking:
    def test_depth_positive_where_valid(self):
        seq = generate_sequence("town10", scale=0.2, seed=0)
        t0, t1 = seq.frames[0].timestamp, seq.frames[1].timestamp
        bins = discretized_event_bins(seq.events, t0, t1, 8)
        result = DepthSurrogate().predict(bins, reference_depth=seq.ground_truth[0].depth)
        assert result.prediction.shape == bins.shape[2:]
        if result.valid_mask.any():
            assert np.all(result.prediction[result.valid_mask] > 0)

    def test_tracking_box_overlaps_ground_truth(self):
        seq = generate_sequence("high_speed_disk", scale=0.2, seed=0)
        t0, t1 = seq.frames[0].timestamp, seq.frames[1].timestamp
        bins = discretized_event_bins(seq.events, t0, t1, 8)
        result = TrackingSurrogate().predict(bins)
        pred_box = TrackingSurrogate.bounding_box(result.prediction)
        gt_box = TrackingSurrogate.bounding_box(seq.ground_truth[0].segmentation > 0)
        assert box_iou(pred_box, gt_box) > 0.1

    def test_tracking_invalid_params(self):
        with pytest.raises(ValueError):
            TrackingSurrogate(leak=2.0)
        with pytest.raises(ValueError):
            TrackingSurrogate(threshold_percentile=0.0)

    def test_bounding_box_of_empty_mask(self):
        assert TrackingSurrogate.bounding_box(np.zeros((8, 8))) is None


class TestSurrogateRegistry:
    def test_all_tasks_resolvable(self):
        assert isinstance(surrogate_for_task("optical_flow"), FlowSurrogate)
        assert isinstance(surrogate_for_task("semantic_segmentation"), SegmentationSurrogate)
        assert isinstance(surrogate_for_task("depth_estimation"), DepthSurrogate)
        assert isinstance(surrogate_for_task("object_tracking"), TrackingSurrogate)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            surrogate_for_task("speech_recognition")


class TestPrecisionMapping:
    def test_maps_min_precision_per_group(self):
        layers = [Precision.FP32, Precision.FP16, Precision.INT8, Precision.FP32]
        stages = map_layer_precisions_to_stages(layers, 2)
        assert stages == [Precision.FP16, Precision.INT8]

    def test_empty_layers_give_fp32(self):
        assert map_layer_precisions_to_stages([], 3) == [Precision.FP32] * 3

    def test_more_stages_than_layers(self):
        stages = map_layer_precisions_to_stages([Precision.INT8], 3)
        assert len(stages) == 3
        assert Precision.INT8 in stages


class TestTaskAccuracyEvaluator:
    @pytest.fixture(scope="class")
    def flow_evaluator(self):
        return TaskAccuracyEvaluator("optical_flow", scale=0.15, num_intervals=3, seed=0)

    def test_baseline_finite(self, flow_evaluator):
        assert np.isfinite(flow_evaluator.baseline())

    def test_degradation_non_negative(self, flow_evaluator):
        deg = flow_evaluator.degradation([Precision.INT8] * 3, merge_factor=2)
        assert deg >= 0.0

    def test_cache_returns_same_value(self, flow_evaluator):
        a = flow_evaluator.evaluate([Precision.INT8] * 3)
        b = flow_evaluator.evaluate([Precision.INT8] * 3)
        assert a == b

    def test_subset_evaluation(self, flow_evaluator):
        value = flow_evaluator.evaluate(subset=1)
        assert np.isfinite(value)

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            TaskAccuracyEvaluator("unknown_task")

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            TaskAccuracyEvaluator("optical_flow", num_bins=0)

    def test_segmentation_evaluator_uses_miou(self):
        ev = TaskAccuracyEvaluator("semantic_segmentation", scale=0.15, num_intervals=2, seed=0)
        assert not ev.lower_is_better
        assert ev.baseline() > 0.0
