"""Tests for the integrated Ev-Edge pipeline and its configuration."""

from __future__ import annotations

import pytest

from repro.baselines import run_all_gpu_baseline
from repro.core import DSFAConfig, EvEdgeConfig, EvEdgePipeline, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence("indoor_flying1", scale=0.15, duration=0.5, seed=0)


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet")


class TestOptimizationLevel:
    def test_flags(self):
        assert not OptimizationLevel.BASELINE.uses_sparse
        assert OptimizationLevel.E2SF.uses_sparse
        assert not OptimizationLevel.E2SF.uses_dsfa
        assert OptimizationLevel.E2SF_DSFA.uses_dsfa
        assert OptimizationLevel.FULL.uses_nmp

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvEdgeConfig(num_bins=0)


class TestPipeline:
    def test_baseline_produces_inferences(self, network, platform, sequence):
        report = run_all_gpu_baseline(network, platform, sequence, num_bins=5)
        assert report.num_inferences > 0
        assert report.mean_latency > 0
        assert report.total_energy > 0
        assert report.mean_occupancy == 1.0  # dense path ignores sparsity

    def test_e2sf_level_is_faster_and_sparser(self, network, platform, sequence):
        baseline = EvEdgePipeline(
            network, platform, EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.BASELINE)
        ).run(sequence)
        sparse = EvEdgePipeline(
            network, platform, EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF)
        ).run(sequence)
        assert sparse.mean_latency < baseline.mean_latency
        assert sparse.total_energy < baseline.total_energy
        assert sparse.mean_occupancy < 1.0

    def test_dsfa_reduces_inference_count_for_heavy_network(self, platform, sequence):
        heavy = build_network("adaptive_spikenet")
        config_e2sf = EvEdgeConfig(num_bins=10, optimization=OptimizationLevel.E2SF)
        config_dsfa = EvEdgeConfig(
            num_bins=10,
            dsfa=DSFAConfig(event_buffer_size=8, merge_bucket_size=4),
            optimization=OptimizationLevel.E2SF_DSFA,
        )
        without = EvEdgePipeline(heavy, platform, config_e2sf).run(sequence)
        with_dsfa = EvEdgePipeline(heavy, platform, config_dsfa).run(sequence)
        assert with_dsfa.num_inferences <= without.num_inferences + without.frames_dropped
        # DSFA never drops frames: they are merged instead.
        assert with_dsfa.frames_dropped == 0

    def test_frame_accounting(self, network, platform, sequence):
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        report = EvEdgePipeline(network, platform, config).run(sequence)
        assert report.frames_generated == 5 * sequence.num_intervals
        assert report.frames_merged <= report.frames_generated

    def test_empty_report_defaults(self):
        from repro.core.pipeline import PipelineReport

        report = PipelineReport()
        assert report.mean_latency == 0.0
        assert report.total_time == 0.0
        assert report.mean_occupancy == 0.0
        assert report.num_inferences == 0
