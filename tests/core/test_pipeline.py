"""Tests for the integrated Ev-Edge pipeline and its configuration."""

from __future__ import annotations

import pytest

from repro.baselines import run_all_gpu_baseline
from repro.core import DSFAConfig, EvEdgeConfig, EvEdgePipeline, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence("indoor_flying1", scale=0.15, duration=0.5, seed=0)


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet")


class TestOptimizationLevel:
    def test_flags(self):
        assert not OptimizationLevel.BASELINE.uses_sparse
        assert OptimizationLevel.E2SF.uses_sparse
        assert not OptimizationLevel.E2SF.uses_dsfa
        assert OptimizationLevel.E2SF_DSFA.uses_dsfa
        assert OptimizationLevel.FULL.uses_nmp

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvEdgeConfig(num_bins=0)


class TestPipeline:
    def test_baseline_produces_inferences(self, network, platform, sequence):
        report = run_all_gpu_baseline(network, platform, sequence, num_bins=5)
        assert report.num_inferences > 0
        assert report.mean_latency > 0
        assert report.total_energy > 0
        assert report.mean_occupancy == 1.0  # dense path ignores sparsity

    def test_e2sf_level_is_faster_and_sparser(self, network, platform, sequence):
        baseline = EvEdgePipeline(
            network, platform, EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.BASELINE)
        ).run(sequence)
        sparse = EvEdgePipeline(
            network, platform, EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF)
        ).run(sequence)
        assert sparse.mean_latency < baseline.mean_latency
        assert sparse.total_energy < baseline.total_energy
        assert sparse.mean_occupancy < 1.0

    def test_dsfa_reduces_inference_count_for_heavy_network(self, platform, sequence):
        heavy = build_network("adaptive_spikenet")
        config_e2sf = EvEdgeConfig(num_bins=10, optimization=OptimizationLevel.E2SF)
        config_dsfa = EvEdgeConfig(
            num_bins=10,
            dsfa=DSFAConfig(event_buffer_size=8, merge_bucket_size=4),
            optimization=OptimizationLevel.E2SF_DSFA,
        )
        without = EvEdgePipeline(heavy, platform, config_e2sf).run(sequence)
        with_dsfa = EvEdgePipeline(heavy, platform, config_dsfa).run(sequence)
        assert with_dsfa.num_inferences <= without.num_inferences + without.frames_dropped
        # DSFA never drops frames: they are merged instead.
        assert with_dsfa.frames_dropped == 0

    def test_frame_accounting(self, network, platform, sequence):
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        report = EvEdgePipeline(network, platform, config).run(sequence)
        assert report.frames_generated == 5 * sequence.num_intervals
        assert report.frames_merged <= report.frames_generated

    def test_empty_report_defaults(self):
        from repro.core.pipeline import PipelineReport

        report = PipelineReport()
        assert report.mean_latency == 0.0
        assert report.total_time == 0.0
        assert report.mean_occupancy == 0.0
        assert report.num_inferences == 0

    def test_no_dsfa_backlog_drops_frames(self, platform, sequence):
        """Without DSFA a burst beyond ``inference_queue_depth`` sheds load."""
        heavy = build_network("adaptive_spikenet")
        config = EvEdgeConfig(
            num_bins=20,
            optimization=OptimizationLevel.E2SF,
            dsfa=DSFAConfig(inference_queue_depth=1),
        )
        report = EvEdgePipeline(heavy, platform, config).run(sequence)
        assert report.frames_dropped > 0
        # Every generated frame is either executed individually or dropped.
        assert report.num_inferences + report.frames_dropped == report.frames_generated
        assert all(r.num_frames == 1 for r in report.records)

    def test_kernel_run_matches_seed_reference(self, network, platform, sequence):
        """``run()`` on the event kernel must replay the seed's inline loop
        record for record (same dispatch/start/end times, energy, counters)."""
        from repro.core.dsfa import DynamicSparseFrameAggregator
        from repro.core.e2sf import Event2SparseFrameConverter
        from repro.core.pipeline import InferenceRecord, PipelineReport
        from repro.frames.sparse import SparseFrameBatch

        def reference_run(pipeline, seq):
            report = PipelineReport()
            aggregator = (
                DynamicSparseFrameAggregator(pipeline.config.dsfa)
                if pipeline.config.optimization.uses_dsfa
                else None
            )
            converter = Event2SparseFrameConverter(pipeline.config.num_bins)
            busy_until = 0.0

            def execute(batch, dispatch_time, busy_until):
                occupancy = (
                    batch.mean_density
                    if pipeline.config.optimization.uses_sparse
                    else 1.0
                )
                latency, energy = pipeline.inference_time_and_energy(
                    max(occupancy, 1e-4), max(len(batch), 1)
                )
                start = max(dispatch_time, busy_until)
                report.records.append(
                    InferenceRecord(
                        dispatch_time, start, start + latency,
                        len(batch), occupancy, energy,
                    )
                )
                return start + latency

            timestamps = seq.frame_timestamps
            for i in range(seq.num_intervals):
                frames = converter.convert(
                    seq.events, float(timestamps[i]), float(timestamps[i + 1])
                )
                report.frames_generated += len(frames)
                for frame in frames:
                    arrival = frame.t_end
                    if aggregator is not None:
                        batch = aggregator.push(
                            frame, hardware_available=arrival >= busy_until
                        )
                        if batch is not None:
                            busy_until = execute(batch, arrival, busy_until)
                            report.frames_merged += len(batch)
                    else:
                        backlog = busy_until - arrival
                        last = (
                            report.records[-1].end_time - report.records[-1].start_time
                            if report.records
                            else 0.0
                        )
                        depth = pipeline.config.dsfa.inference_queue_depth
                        if backlog > depth * max(last, 1e-9):
                            report.frames_dropped += 1
                            continue
                        busy_until = execute(
                            SparseFrameBatch([frame]), arrival, busy_until
                        )
            if aggregator is not None:
                batch = aggregator.flush()
                if batch is not None:
                    busy_until = execute(batch, float(timestamps[-1]), busy_until)
                    report.frames_merged += len(batch)
            return report

        for level in OptimizationLevel:
            config = EvEdgeConfig(
                num_bins=7,
                dsfa=DSFAConfig(
                    event_buffer_size=6, merge_bucket_size=3, inference_queue_depth=2
                ),
                optimization=level,
            )
            pipeline = EvEdgePipeline(network, platform, config)
            actual = pipeline.run(sequence)
            expected = reference_run(pipeline, sequence)
            assert actual.records == expected.records
            assert actual.frames_generated == expected.frames_generated
            assert actual.frames_merged == expected.frames_merged
            assert actual.frames_dropped == expected.frames_dropped

    def test_run_with_trace_records_timeline(self, network, platform, sequence):
        from repro.runtime import KernelTrace

        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        trace = KernelTrace()
        report = EvEdgePipeline(network, platform, config).run(sequence, trace=trace)
        counts = trace.counts()
        assert counts["FrameReady"] == report.frames_generated
        assert counts["DispatchBatch"] == report.num_inferences
        assert counts["InferenceDone"] == report.num_inferences
        assert counts["StreamEnd"] == 1
