"""Tests for the Event2Sparse Frame converter and the Dynamic Sparse Frame Aggregator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BucketStatus,
    DSFAConfig,
    DynamicSparseFrameAggregator,
    Event2SparseFrameConverter,
    MergeBucket,
    MergeMode,
)
from repro.events import EventStream, SensorGeometry
from repro.frames import SparseFrame, discretized_event_bins


def make_stream(n=2000, seed=0, geometry=None, t_end=1.0):
    geometry = geometry or SensorGeometry(width=48, height=36)
    rng = np.random.default_rng(seed)
    return EventStream(
        rng.integers(0, geometry.width, n),
        rng.integers(0, geometry.height, n),
        np.sort(rng.uniform(0, t_end, n)),
        rng.choice([-1, 1], n),
        geometry,
    )


def make_frame(seed=0, n=100, density_scale=1.0, t_start=0.0, t_end=0.01, h=36, w=48):
    rng = np.random.default_rng(seed)
    count = max(int(n * density_scale), 1)
    return SparseFrame.from_events(
        rng.integers(0, w, count), rng.integers(0, h, count), rng.choice([-1, 1], count),
        h, w, t_start, t_end,
    )


class TestE2SF:
    def test_number_of_frames_equals_bins(self):
        stream = make_stream()
        frames = Event2SparseFrameConverter(8).convert(stream, 0.0, 1.0)
        assert len(frames) == 8

    def test_conserves_events(self):
        stream = make_stream()
        frames = Event2SparseFrameConverter(5).convert(stream, 0.0, 1.0)
        assert sum(f.num_events for f in frames) == pytest.approx(len(stream))

    def test_matches_dense_discretisation(self):
        stream = make_stream(seed=3)
        num_bins = 4
        frames = Event2SparseFrameConverter(num_bins).convert(stream, 0.0, 1.0)
        dense = discretized_event_bins(stream, 0.0, 1.0, num_bins)
        for k, frame in enumerate(frames):
            assert np.allclose(frame.to_dense(), dense[k])

    def test_bin_time_ranges(self):
        stream = make_stream()
        frames = Event2SparseFrameConverter(4).convert(stream, 0.0, 1.0)
        assert frames[0].t_start == 0.0
        assert frames[-1].t_end == pytest.approx(1.0)
        assert frames[1].t_start == pytest.approx(0.25)

    def test_empty_window_gives_empty_frames(self):
        stream = make_stream()
        frames = Event2SparseFrameConverter(3).convert(stream, 5.0, 6.0)
        assert all(f.num_active == 0 for f in frames)
        assert len(frames) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Event2SparseFrameConverter(0)
        with pytest.raises(ValueError):
            Event2SparseFrameConverter(4).convert(make_stream(), 1.0, 0.5)

    def test_report_shows_direct_path_cheaper(self):
        stream = make_stream(n=500)
        _, report = Event2SparseFrameConverter(5).convert_with_report(stream, 0.0, 1.0)
        assert report.operation_saving > 1.0
        assert report.num_events == 500

    def test_convert_sequence(self):
        stream = make_stream()
        per_interval = Event2SparseFrameConverter(4).convert_sequence(stream, [0.0, 0.5, 1.0])
        assert len(per_interval) == 2
        assert all(len(frames) == 4 for frames in per_interval)
        with pytest.raises(ValueError):
            Event2SparseFrameConverter(4).convert_sequence(stream, [0.0])

    def test_mean_occupancy(self):
        converter = Event2SparseFrameConverter(4)
        frames = converter.convert(make_stream(), 0.0, 1.0)
        assert 0.0 < converter.mean_occupancy(frames) <= 1.0
        assert converter.mean_occupancy([]) == 0.0


class TestMergeBucket:
    def test_capacity_enforced(self):
        bucket = MergeBucket(capacity=2)
        bucket.add(make_frame(1))
        bucket.add(make_frame(2))
        assert bucket.is_full
        with pytest.raises(RuntimeError):
            bucket.add(make_frame(3))

    def test_accepts_respects_time_threshold(self):
        bucket = MergeBucket(capacity=4)
        bucket.add(make_frame(1, t_start=0.0, t_end=0.01))
        late = make_frame(2, t_start=1.0, t_end=1.01)
        assert not bucket.accepts(late, max_delay=0.5, max_density_change=1.0)
        assert bucket.accepts(late, max_delay=2.0, max_density_change=1.0)

    def test_accepts_respects_density_threshold(self):
        bucket = MergeBucket(capacity=4)
        bucket.add(make_frame(1, n=20))
        dense = make_frame(2, n=600)
        assert not bucket.accepts(dense, max_delay=1.0, max_density_change=0.1)
        assert bucket.accepts(dense, max_delay=1.0, max_density_change=1.0)

    def test_merge_modes(self):
        frames = [make_frame(1), make_frame(2)]
        bucket = MergeBucket(capacity=2, frames=list(frames))
        added = bucket.merge(MergeMode.ADD)
        averaged = bucket.merge(MergeMode.AVERAGE)
        assert added.num_events == pytest.approx(sum(f.num_events for f in frames))
        assert averaged.num_events == pytest.approx(added.num_events / 2)

    def test_merge_empty_bucket_rejected(self):
        with pytest.raises(RuntimeError):
            MergeBucket(capacity=2).merge(MergeMode.ADD)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MergeBucket(capacity=0)


class TestDSFAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DSFAConfig(event_buffer_size=0)
        with pytest.raises(ValueError):
            DSFAConfig(merge_bucket_size=10, event_buffer_size=4)
        with pytest.raises(ValueError):
            DSFAConfig(max_time_delay=0.0)
        with pytest.raises(ValueError):
            DSFAConfig(inference_queue_depth=0)


class TestDSFA:
    def test_buffer_overflow_triggers_dispatch(self):
        config = DSFAConfig(event_buffer_size=4, merge_bucket_size=2, max_density_change=10.0)
        dsfa = DynamicSparseFrameAggregator(config)
        dispatched = None
        for i in range(4):
            dispatched = dsfa.push(make_frame(i, t_start=i * 0.001, t_end=(i + 1) * 0.001))
        assert dispatched is not None
        assert dsfa.buffer_occupancy == 0
        # 4 frames in buckets of 2 -> batch of 2 merged frames.
        assert len(dispatched) == 2

    def test_hardware_available_dispatches_early(self):
        dsfa = DynamicSparseFrameAggregator(DSFAConfig(event_buffer_size=8, merge_bucket_size=4))
        batch = dsfa.push(make_frame(0), hardware_available=True)
        assert batch is not None
        assert len(batch) == 1

    def test_cbatch_mode_keeps_frames_separate(self):
        config = DSFAConfig(event_buffer_size=4, merge_bucket_size=4, merge_mode=MergeMode.BATCH)
        dsfa = DynamicSparseFrameAggregator(config)
        batch = None
        for i in range(4):
            batch = dsfa.push(make_frame(i, t_start=i * 0.001, t_end=(i + 1) * 0.001))
        assert batch is not None
        assert len(batch) == 4  # every frame in its own bucket

    def test_cadd_conserves_events(self):
        config = DSFAConfig(event_buffer_size=4, merge_bucket_size=4, max_density_change=10.0,
                            max_time_delay=10.0)
        dsfa = DynamicSparseFrameAggregator(config)
        frames = [make_frame(i, t_start=i * 0.001, t_end=(i + 1) * 0.001) for i in range(4)]
        batch = None
        for frame in frames:
            batch = dsfa.push(frame)
        assert batch is not None
        assert batch.num_events == pytest.approx(sum(f.num_events for f in frames))

    def test_flush_empties_buffer(self):
        dsfa = DynamicSparseFrameAggregator(DSFAConfig(event_buffer_size=8, merge_bucket_size=2))
        dsfa.push(make_frame(0))
        assert dsfa.flush() is not None
        assert dsfa.flush() is None
        assert dsfa.buffer_occupancy == 0

    def test_inference_queue_eviction(self):
        config = DSFAConfig(event_buffer_size=1, merge_bucket_size=1, inference_queue_depth=1)
        dsfa = DynamicSparseFrameAggregator(config)
        dsfa.push(make_frame(0))
        dsfa.push(make_frame(1))
        assert dsfa.discarded_frames > 0
        assert len(dsfa.inference_queue) == 1

    def test_pop_batch_fifo(self):
        dsfa = DynamicSparseFrameAggregator(DSFAConfig(event_buffer_size=1, merge_bucket_size=1))
        dsfa.push(make_frame(0))
        assert dsfa.pop_batch() is not None
        assert dsfa.pop_batch() is None

    def test_density_mismatch_opens_new_bucket(self):
        config = DSFAConfig(event_buffer_size=8, merge_bucket_size=4, max_density_change=0.05)
        dsfa = DynamicSparseFrameAggregator(config)
        dsfa.push(make_frame(0, n=20))
        dsfa.push(make_frame(1, n=800))
        assert dsfa.num_buckets == 2


def frames_bit_identical(a, b):
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


class TestConvertStack:
    """The one-pass columnar render must match the per-interval oracle bit for bit."""

    def assert_stack_matches_oracle(self, stream, timestamps, num_bins):
        converter = Event2SparseFrameConverter(num_bins)
        stack = converter.convert_stack(stream, timestamps)
        oracle = [
            f for interval in converter.convert_sequence(stream, list(timestamps))
            for f in interval
        ]
        assert len(stack) == len(oracle) == (len(timestamps) - 1) * num_bins
        for i, (view, expected) in enumerate(zip(stack.frames(), oracle)):
            assert frames_bit_identical(view, expected), f"frame {i}"

    def test_matches_oracle_on_random_stream(self):
        stream = make_stream(n=5000, seed=11)
        self.assert_stack_matches_oracle(stream, np.linspace(0.0, 1.0, 9), 5)

    def test_matches_oracle_irregular_timestamps(self):
        # Uneven grayscale intervals give each interval its own bin duration.
        stream = make_stream(n=3000, seed=12)
        self.assert_stack_matches_oracle(
            stream, np.array([0.0, 0.05, 0.3, 0.35, 0.9, 1.0]), 4
        )

    def test_matches_oracle_with_empty_intervals(self):
        # No events at all in [2, 3): every frame of that interval is empty.
        stream = make_stream(n=1000, seed=13, t_end=1.0)
        self.assert_stack_matches_oracle(stream, np.array([0.0, 0.5, 2.0, 3.0]), 3)

    def test_matches_oracle_on_boundary_events(self):
        # Events exactly on grayscale timestamps must land in the interval
        # the half-open slice_time window assigns them to.
        geometry = SensorGeometry(width=16, height=16)
        t = np.array([0.0, 0.1, 0.25, 0.25, 0.5, 0.75, 1.0])
        stream = EventStream(
            np.arange(len(t)) % 16, np.arange(len(t)) % 16,
            t, np.where(np.arange(len(t)) % 2 == 0, 1, -1), geometry,
        )
        self.assert_stack_matches_oracle(stream, np.array([0.0, 0.25, 0.5, 1.0]), 2)

    def test_matches_oracle_single_bin(self):
        stream = make_stream(n=800, seed=14)
        self.assert_stack_matches_oracle(stream, np.linspace(0.0, 1.0, 5), 1)

    def test_matches_oracle_outside_recording(self):
        # Window entirely after the last event: all frames empty, exact
        # t bounds still required.
        stream = make_stream(n=100, seed=15, t_end=1.0)
        self.assert_stack_matches_oracle(stream, np.array([5.0, 5.5, 6.0]), 4)

    def test_rejects_bad_timestamps(self):
        stream = make_stream(n=10)
        converter = Event2SparseFrameConverter(2)
        with pytest.raises(ValueError):
            converter.convert_stack(stream, [0.0])
        with pytest.raises(ValueError):
            converter.convert_stack(stream, [0.0, 0.5, 0.5])
        with pytest.raises(ValueError):
            converter.convert_stack(stream, [0.0, 0.5, 0.2])

    def test_stack_frames_are_views(self):
        stream = make_stream(n=2000, seed=16)
        stack = Event2SparseFrameConverter(4).convert_stack(
            stream, np.linspace(0.0, 1.0, 5)
        )
        dense_total = sum(f.num_events for f in stack.frames())
        assert dense_total == pytest.approx(len(stream))
        assert np.shares_memory(stack.frame(0).pos, stack.pos)


class TestBufferOccupancyCounter:
    def _recomputed(self, dsfa):
        return sum(bucket.occupancy for bucket in dsfa._buckets)

    @pytest.mark.parametrize("mode", list(MergeMode))
    def test_counter_matches_recomputed_sum(self, mode):
        config = DSFAConfig(
            event_buffer_size=6,
            merge_bucket_size=3,
            merge_mode=mode,
            max_time_delay=0.004,
            max_density_change=0.3,
        )
        dsfa = DynamicSparseFrameAggregator(config)
        for i in range(40):
            frame = make_frame(
                seed=i,
                n=60 if i % 5 else 600,
                t_start=i * 0.002,
                t_end=(i + 1) * 0.002,
            )
            dsfa.push(frame, hardware_available=(i % 11 == 0))
            assert dsfa.buffer_occupancy == self._recomputed(dsfa)
        dsfa.flush()
        assert dsfa.buffer_occupancy == self._recomputed(dsfa) == 0

    def test_counter_resets_on_dispatch(self):
        dsfa = DynamicSparseFrameAggregator(
            DSFAConfig(event_buffer_size=2, merge_bucket_size=2)
        )
        dsfa.push(make_frame(0))
        assert dsfa.buffer_occupancy == 1
        batch = dsfa.push(make_frame(1, t_start=0.01, t_end=0.02))
        assert batch is not None
        assert dsfa.buffer_occupancy == 0


class TestSegmentedDispatch:
    @pytest.mark.parametrize("mode", list(MergeMode))
    def test_dispatch_matches_per_bucket_merge(self, mode):
        config = DSFAConfig(
            event_buffer_size=12,
            merge_bucket_size=4,
            merge_mode=mode,
            max_time_delay=0.003,
            max_density_change=0.25,
            inference_queue_depth=8,
        )
        dsfa = DynamicSparseFrameAggregator(config)
        frames = [
            make_frame(seed=i, n=80, t_start=i * 0.002, t_end=(i + 1) * 0.002)
            for i in range(11)
        ]
        for frame in frames:
            dsfa.push(frame)
        expected = [bucket.merge(mode) for bucket in dsfa._buckets]
        batch = dsfa.flush()
        assert len(batch) == len(expected)
        for merged, reference in zip(batch, expected):
            assert frames_bit_identical(merged, reference)


@settings(max_examples=20, deadline=None)
@given(
    num_frames=st.integers(min_value=1, max_value=12),
    bucket=st.integers(min_value=1, max_value=4),
    buffer=st.integers(min_value=4, max_value=12),
)
def test_property_dsfa_never_loses_events_before_queue_eviction(num_frames, bucket, buffer):
    """Property: with a deep inference queue, cAdd merging conserves all events."""
    bucket = min(bucket, buffer)
    config = DSFAConfig(
        event_buffer_size=buffer,
        merge_bucket_size=bucket,
        max_time_delay=10.0,
        max_density_change=10.0,
        inference_queue_depth=64,
    )
    dsfa = DynamicSparseFrameAggregator(config)
    frames = [make_frame(i, t_start=i * 0.001, t_end=(i + 1) * 0.001) for i in range(num_frames)]
    for frame in frames:
        dsfa.push(frame)
    dsfa.flush()
    total = sum(batch.num_events for batch in dsfa.inference_queue)
    assert total == pytest.approx(sum(f.num_events for f in frames))


class TestStackIndexProtocol:
    """push_index(stack, i) must be step-for-step identical to push(frame_i)."""

    def _config(self, mode=MergeMode.ADD):
        return DSFAConfig(
            event_buffer_size=6,
            merge_bucket_size=3,
            merge_mode=mode,
            max_time_delay=0.004,
            max_density_change=0.3,
            inference_queue_depth=4,
        )

    def _frames(self, n=40):
        return [
            make_frame(
                seed=i,
                n=60 if i % 5 else 600,
                t_start=i * 0.002,
                t_end=(i + 1) * 0.002,
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("mode", list(MergeMode))
    def test_push_index_matches_push(self, mode):
        from repro.frames import FrameStack

        frames = self._frames()
        stack = FrameStack.from_frames(frames)
        by_frame = DynamicSparseFrameAggregator(self._config(mode))
        by_index = DynamicSparseFrameAggregator(self._config(mode))
        for i, frame in enumerate(frames):
            hw = i % 7 == 0
            a = by_frame.push(frame, hardware_available=hw)
            b = by_index.push_index(stack, i, hardware_available=hw)
            assert (a is None) == (b is None), i
            if a is not None:
                assert len(a) == len(b)
                for fa, fb in zip(a, b):
                    assert frames_bit_identical(fa, fb)
            # The occupancy counter is protocol-independent state.
            assert by_frame.buffer_occupancy == by_index.buffer_occupancy, i
        a, b = by_frame.flush(), by_index.flush()
        assert len(a) == len(b)
        for fa, fb in zip(a, b):
            assert frames_bit_identical(fa, fb)
        assert by_frame.merge_statistics() == by_index.merge_statistics()

    def test_occupancy_counter_under_push_index(self):
        from repro.frames import FrameStack

        frames = self._frames()
        stack = FrameStack.from_frames(frames)
        dsfa = DynamicSparseFrameAggregator(self._config())
        for i in range(len(stack)):
            dsfa.push_index(stack, i, hardware_available=(i % 11 == 0))
            assert dsfa.buffer_occupancy == sum(
                bucket.occupancy for bucket in dsfa._buckets
            )
        dsfa.flush()
        assert dsfa.buffer_occupancy == 0

    def test_dispatch_is_stack_backed_for_single_stream(self):
        from repro.frames import FrameStack

        frames = self._frames(n=5)
        stack = FrameStack.from_frames(frames)
        dsfa = DynamicSparseFrameAggregator(self._config())
        for i in range(len(stack)):
            assert dsfa.push_index(stack, i) is None
        batch = dsfa.flush()
        # Same-stack buckets dispatch through merge_ranges into one
        # stack-backed batch (no per-frame materialisation).
        assert batch.stack is not None

    def test_bucket_contiguity_guard(self):
        from repro.core import StackMergeBucket
        from repro.frames import FrameStack

        stack = FrameStack.from_frames(self._frames(n=4))
        bucket = StackMergeBucket(capacity=4, stack=stack, start=0)
        bucket.add_index(0)
        bucket.add_index(1)
        with pytest.raises(RuntimeError):
            bucket.add_index(3)
