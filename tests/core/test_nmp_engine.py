"""Tests for the pluggable NMP search engine, its strategies and the flat scheduler."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    EvolutionaryStrategy,
    ExecutionScheduler,
    FitnessEvaluator,
    GreedyLayerwiseStrategy,
    MapperEngine,
    MappingCandidate,
    NMPConfig,
    NetworkMapper,
    RandomSearchMapper,
    RandomSearchStrategy,
    STRATEGIES,
    SimulatedAnnealingStrategy,
    make_strategy,
)
from repro.hw import PlatformProfiler, jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, TaskAccuracyEvaluator, TaskSpec
from repro.runtime import all_gpu_mapping, rr_layer_mapping


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def graph():
    return MultiTaskGraph(
        [
            TaskSpec(build_network("dotie", 64, 64)),
            TaskSpec(build_network("spikeflownet", 64, 64)),
        ]
    )


@pytest.fixture(scope="module")
def profile(platform, graph):
    return PlatformProfiler(platform).profile(graph, occupancy=0.1)


def seed_reference_evolutionary(graph, platform, profile, config, initial_candidates=()):
    """The pre-engine ``NetworkMapper.run`` loop, re-implemented verbatim.

    The refactored engine must reproduce this bit-for-bit for a given seed
    (the Figure-10 regression contract).
    """
    evaluator = FitnessEvaluator(
        graph, platform, profile, accuracy_threshold=config.accuracy_threshold, sparse=True
    )
    rng = np.random.default_rng(config.seed)
    population = [c.copy() for c in list(initial_candidates)[: config.population_size]]
    while len(population) < config.population_size:
        population.append(
            MappingCandidate.random(
                graph, platform, rng, full_precision_only=config.full_precision_only
            )
        )
    history = []
    best_candidate = None
    best = None
    for _generation in range(config.generations):
        evaluated = [(c, evaluator.evaluate(c)) for c in population]
        evaluated.sort(key=lambda pair: pair[1].fitness)
        gen_best_candidate, gen_best = evaluated[0]
        if best is None or gen_best.fitness < best.fitness:
            best_candidate, best = gen_best_candidate.copy(), gen_best
        history.append(
            (
                gen_best.fitness,
                float(np.mean([b.fitness for _, b in evaluated])),
                gen_best.max_task_latency,
            )
        )
        num_elite = max(int(round(config.elite_fraction * config.population_size)), 1)
        ranked = [c for c, _ in evaluated]
        elites = [c.copy() for c in ranked[:num_elite]]
        children = []
        parents = ranked[: max(num_elite * 2, 2)]
        while len(children) < config.population_size - num_elite:
            i = int(rng.integers(len(parents) - 1)) if len(parents) > 1 else 0
            pair = (parents[i], parents[min(i + 1, len(parents) - 1)])
            chosen = pair[int(rng.integers(2))]
            children.append(
                chosen.mutate(
                    graph,
                    platform,
                    rng,
                    num_mutations=config.mutation_layers,
                    full_precision_only=config.full_precision_only,
                )
            )
        population = elites + children
    return best_candidate, best, history


class TestSeedReproduction:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_engine_reproduces_pre_refactor_evolutionary_search(
        self, graph, platform, profile, seed
    ):
        config = NMPConfig(population_size=10, generations=6, seed=seed)
        expected_candidate, expected_best, expected_history = (
            seed_reference_evolutionary(graph, platform, profile, config)
        )
        result = NetworkMapper(graph, platform, profile, config).run()
        assert result.best_candidate.key() == expected_candidate.key()
        assert result.best_breakdown.fitness == expected_best.fitness
        assert [
            (g.best_fitness, g.mean_fitness, g.best_latency) for g in result.history
        ] == expected_history

    def test_engine_reproduces_warm_started_search(self, graph, platform, profile):
        config = NMPConfig(population_size=8, generations=4, seed=1)
        seeds = [all_gpu_mapping(graph, platform), rr_layer_mapping(graph, platform)]
        expected_candidate, _, expected_history = seed_reference_evolutionary(
            graph, platform, profile, config, initial_candidates=seeds
        )
        result = NetworkMapper(
            graph, platform, profile, config, initial_candidates=seeds
        ).run()
        assert result.best_candidate.key() == expected_candidate.key()
        assert [
            (g.best_fitness, g.mean_fitness, g.best_latency) for g in result.history
        ] == expected_history


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_strategy_is_seed_deterministic(self, graph, platform, profile, name):
        config = NMPConfig(population_size=8, generations=5, seed=2)
        runs = []
        for _ in range(2):
            engine = MapperEngine(graph, platform, profile, config)
            result = engine.run(make_strategy(name))
            runs.append(result)
        first, second = runs
        assert first.best_candidate.key() == second.best_candidate.key()
        assert first.best_breakdown.fitness == second.best_breakdown.fitness
        assert [
            (g.best_fitness, g.mean_fitness) for g in first.history
        ] == [(g.best_fitness, g.mean_fitness) for g in second.history]
        assert first.strategy == name

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_strategy_results_are_valid_mappings(self, graph, platform, profile, name):
        config = NMPConfig(population_size=6, generations=4, seed=0)
        result = MapperEngine(graph, platform, profile, config).run(make_strategy(name))
        candidate = result.best_candidate
        assert len(candidate) == len(graph.compute_nodes())
        for node, assignment in candidate.assignments.items():
            pe = platform.pe(assignment.pe)
            assert pe.supports_layer(graph.spec(node))
            assert pe.supports_precision(assignment.precision)
        assert result.best_latency > 0
        # Best-so-far convergence is non-increasing for every strategy.
        conv = result.convergence
        assert all(b <= a + 1e-12 for a, b in zip(conv, conv[1:]))

    def test_four_strategies_share_one_evaluator(self, graph, platform, profile):
        config = NMPConfig(population_size=8, generations=4, seed=0)
        engine = MapperEngine(graph, platform, profile, config)
        results = {
            name: engine.run(make_strategy(name)) for name in sorted(STRATEGIES)
        }
        # All runs drew from one shared evaluator: its totals are the sums of
        # the per-run deltas.
        assert engine.evaluator.evaluations == sum(
            r.evaluations for r in results.values()
        )
        assert engine.evaluator.cache_hits == sum(
            r.cache_hits for r in results.values()
        )
        # Later runs benefit from earlier runs' cached evaluations.
        assert engine.evaluator.cache_hits > 0

    def test_evolutionary_beats_random_under_equal_budget(self, graph, platform, profile):
        config = NMPConfig(population_size=12, generations=10, seed=0)
        engine = MapperEngine(graph, platform, profile, config)
        evolutionary = engine.run(EvolutionaryStrategy())
        random_search = engine.run(RandomSearchStrategy())
        assert evolutionary.requested_evaluations == random_search.requested_evaluations
        assert (
            evolutionary.best_breakdown.fitness
            <= random_search.best_breakdown.fitness + 1e-15
        )

    def test_greedy_descends_from_warm_start(self, graph, platform, profile):
        config = NMPConfig(population_size=4, generations=30, seed=0)
        seed_candidate = all_gpu_mapping(graph, platform)
        engine = MapperEngine(graph, platform, profile, config)
        seed_fitness = engine.evaluator.evaluate(seed_candidate).fitness
        result = engine.run(
            GreedyLayerwiseStrategy(), initial_candidates=[seed_candidate]
        )
        assert result.best_breakdown.fitness <= seed_fitness + 1e-15

    def test_annealing_constructor_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingStrategy(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingStrategy(initial_acceptance_scale=0.0)

    def test_make_strategy_unknown_name(self):
        with pytest.raises(KeyError):
            make_strategy("gradient_descent")


class TestBudgetAndPatience:
    def test_max_evaluations_caps_requested(self, graph, platform, profile):
        config = NMPConfig(
            population_size=10, generations=50, seed=0, max_evaluations=35
        )
        result = MapperEngine(graph, platform, profile, config).run(
            RandomSearchStrategy()
        )
        assert result.requested_evaluations == 35
        # 3 full generations of 10 plus one truncated generation of 5.
        assert len(result.history) == 4

    def test_patience_stops_stagnant_search(self, graph, platform, profile):
        # A patience-1 run stops right after the first non-improving
        # generation; random search with a tiny population stalls quickly.
        config = NMPConfig(population_size=4, generations=200, seed=0, patience=1)
        result = MapperEngine(graph, platform, profile, config).run(
            RandomSearchStrategy()
        )
        assert len(result.history) < 200

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NMPConfig(max_evaluations=0)
        with pytest.raises(ValueError):
            NMPConfig(patience=0)

    def test_run_config_override(self, graph, platform, profile):
        engine = MapperEngine(
            graph, platform, profile, NMPConfig(population_size=8, generations=10, seed=0)
        )
        result = engine.run(
            RandomSearchStrategy(),
            config=replace(engine.config, generations=2),
        )
        assert len(result.history) == 2

    def test_accuracy_threshold_override_rejected(self, graph, platform, profile):
        # The threshold is baked into the shared evaluator's fitness cache,
        # so a per-run override must fail loudly instead of being ignored.
        engine = MapperEngine(
            graph, platform, profile, NMPConfig(population_size=8, generations=2, seed=0)
        )
        with pytest.raises(ValueError, match="accuracy_threshold"):
            engine.run(
                RandomSearchStrategy(),
                config=replace(engine.config, accuracy_threshold=0.2),
            )

    def test_equal_budget_config(self, graph, platform, profile):
        engine = MapperEngine(
            graph, platform, profile, NMPConfig(population_size=8, generations=5, seed=0)
        )
        budget_config = engine.equal_budget_config()
        assert budget_config.max_evaluations == 40
        result = engine.run(GreedyLayerwiseStrategy(), config=budget_config)
        assert result.requested_evaluations <= 40


class TestFlatScheduler:
    @pytest.mark.parametrize("sparse", [False, True])
    def test_flat_path_matches_reference_exactly(self, graph, platform, profile, sparse):
        scheduler = ExecutionScheduler(platform, profile, sparse=sparse)
        rng = np.random.default_rng(0)
        mappings = [
            all_gpu_mapping(graph, platform),
            rr_layer_mapping(graph, platform),
        ] + [MappingCandidate.random(graph, platform, rng) for _ in range(10)]
        for mapping in mappings:
            flat = scheduler.schedule(graph, mapping)
            reference = scheduler.schedule_reference(graph, mapping)
            assert flat.task_latencies == reference.task_latencies
            assert flat.energy == reference.energy
            assert flat.makespan == reference.makespan
            assert flat.timeline == reference.timeline

    def test_schedule_metrics_matches_schedule(self, graph, platform, profile):
        scheduler = ExecutionScheduler(platform, profile, sparse=True)
        rng = np.random.default_rng(1)
        for _ in range(5):
            mapping = MappingCandidate.random(graph, platform, rng)
            task_latencies, energy = scheduler.schedule_metrics(graph, mapping)
            full = scheduler.schedule(graph, mapping)
            assert task_latencies == full.task_latencies
            assert energy == full.energy

    def test_flattening_is_cached_per_graph(self, graph, platform, profile):
        scheduler = ExecutionScheduler(platform, profile, sparse=True)
        assert scheduler.flatten(graph) is scheduler.flatten(graph)

    def test_unmappable_assignment_raises(self, graph, platform, profile):
        from repro.core import Assignment
        from repro.nn import Precision

        scheduler = ExecutionScheduler(platform, profile, sparse=True)
        mapping = all_gpu_mapping(graph, platform)
        # Spiking layers cannot run on the DLA: the flat options table must
        # reject the assignment just like the reference profile lookup.
        spiking = next(n for n in graph.compute_nodes() if graph.spec(n).is_spiking)
        mapping.assignments[spiking] = Assignment("dla0", Precision.FP16)
        with pytest.raises(KeyError):
            scheduler.schedule(graph, mapping)
        with pytest.raises(KeyError):
            scheduler.schedule_reference(graph, mapping)


class TestDeltaEvaluation:
    @pytest.fixture(scope="class")
    def accuracy_evaluators(self, graph):
        return {
            task.name: TaskAccuracyEvaluator(
                task.network.task, scale=0.15, num_intervals=3, seed=0
            )
            for task in graph.tasks
        }

    def test_device_move_reuses_cached_degradations(
        self, graph, platform, profile, accuracy_evaluators
    ):
        evaluator = FitnessEvaluator(
            graph, platform, profile, accuracy_evaluators=accuracy_evaluators
        )
        parent = all_gpu_mapping(graph, platform)
        first = evaluator.evaluate(parent)
        delta_hits_before = evaluator.delta_hits
        # Move one layer to the CPU at the SAME precision: no task's
        # precision tuple changes, so every degradation is a delta hit.
        child = parent.copy()
        node = graph.compute_nodes()[0]
        from repro.core import Assignment

        child.assignments[node] = Assignment("cpu", parent[node].precision)
        second = evaluator.evaluate(child)
        assert evaluator.delta_hits - delta_hits_before == len(graph.task_names)
        assert second.degradations == first.degradations
        # The schedule itself did change.
        assert evaluator.evaluations == 2

    def test_precision_change_reevaluates_only_touched_task(
        self, graph, platform, profile, accuracy_evaluators
    ):
        from repro.core import Assignment
        from repro.nn import Precision

        evaluator = FitnessEvaluator(
            graph, platform, profile, accuracy_evaluators=accuracy_evaluators
        )
        parent = all_gpu_mapping(graph, platform, Precision.FP16)
        evaluator.evaluate(parent)
        child = parent.copy()
        touched = next(
            n for n in graph.compute_nodes() if graph.network_of(n) == "dotie"
        )
        child.assignments[touched] = Assignment("gpu", Precision.INT8)
        before = evaluator.delta_hits
        breakdown = evaluator.evaluate(child)
        # The untouched task reuses its cached degradation; the touched one
        # is re-measured.
        assert evaluator.delta_hits - before == len(graph.task_names) - 1
        assert set(breakdown.degradations) == set(graph.task_names)

    def test_flat_and_reference_fitness_agree(self, graph, platform, profile):
        flat = FitnessEvaluator(graph, platform, profile)
        reference = FitnessEvaluator(
            graph, platform, profile, use_flat_scheduler=False
        )
        rng = np.random.default_rng(2)
        for _ in range(8):
            candidate = MappingCandidate.random(graph, platform, rng)
            assert (
                flat.evaluate(candidate).fitness
                == reference.evaluate(candidate).fitness
            )


class TestMapperCompatibility:
    def test_network_mapper_exposes_engine_and_evaluator(self, graph, platform, profile):
        mapper = NetworkMapper(graph, platform, profile, NMPConfig(population_size=4, generations=2))
        assert mapper.evaluator is mapper.engine.evaluator
        result = mapper.run()
        assert result.strategy == "evolutionary"

    def test_random_mapper_runs_through_engine(self, graph, platform, profile):
        mapper = RandomSearchMapper(
            graph, platform, profile, NMPConfig(population_size=4, generations=2)
        )
        result = mapper.run()
        assert result.strategy == "random"
        assert result.requested_evaluations == 8
