"""Tests for the Network Mapper: candidates, scheduler, fitness and searches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ExecutionScheduler,
    FitnessEvaluator,
    MappingCandidate,
    NMPConfig,
    NetworkMapper,
    RandomSearchMapper,
)
from repro.hw import PlatformProfiler, jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, Precision, TaskSpec
from repro.runtime import all_gpu_mapping, rr_layer_mapping, rr_network_mapping


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def graph():
    return MultiTaskGraph(
        [
            TaskSpec(build_network("dotie", 64, 64)),
            TaskSpec(build_network("spikeflownet", 64, 64)),
        ]
    )


@pytest.fixture(scope="module")
def profile(platform, graph):
    return PlatformProfiler(platform).profile(graph, occupancy=0.1)


class TestMappingCandidate:
    def test_random_candidate_is_valid(self, graph, platform):
        rng = np.random.default_rng(0)
        candidate = MappingCandidate.random(graph, platform, rng)
        assert len(candidate) == len(graph.compute_nodes())
        for node, assignment in candidate.assignments.items():
            pe = platform.pe(assignment.pe)
            assert pe.supports_layer(graph.spec(node))
            assert pe.supports_precision(assignment.precision)

    def test_full_precision_only_candidates(self, graph, platform):
        rng = np.random.default_rng(0)
        candidate = MappingCandidate.random(graph, platform, rng, full_precision_only=True)
        for node, assignment in candidate.assignments.items():
            pe = platform.pe(assignment.pe)
            assert assignment.precision == pe.highest_supported_precision()

    def test_uniform_candidate(self, graph, platform):
        candidate = MappingCandidate.uniform(graph, "gpu", Precision.FP16)
        assert all(a.pe == "gpu" for a in candidate.assignments.values())
        assert candidate.pe_utilisation() == {"gpu": len(candidate)}

    def test_mutation_changes_at_most_n_layers(self, graph, platform):
        rng = np.random.default_rng(1)
        parent = MappingCandidate.random(graph, platform, rng)
        child = parent.mutate(graph, platform, rng, num_mutations=2)
        changed = sum(
            1 for node in parent.assignments if parent[node] != child[node]
        )
        assert changed <= 2
        # Parent unchanged (mutation returns a copy).
        assert parent.key() != child.key() or changed == 0

    def test_key_is_stable(self, graph, platform):
        rng = np.random.default_rng(2)
        candidate = MappingCandidate.random(graph, platform, rng)
        assert candidate.key() == candidate.copy().key()

    def test_task_precisions_length(self, graph, platform):
        candidate = MappingCandidate.uniform(graph, "gpu", Precision.INT8)
        precisions = candidate.task_precisions(graph, "dotie")
        assert len(precisions) == 1  # DOTIE has a single layer
        assert precisions[0] == Precision.INT8


class TestScheduler:
    def test_all_gpu_schedule_is_serial(self, graph, platform, profile):
        mapping = all_gpu_mapping(graph, platform)
        result = ExecutionScheduler(platform, profile).schedule(graph, mapping)
        busy = result.device_busy_time()
        assert set(busy) == {"gpu"}
        assert result.makespan == pytest.approx(busy["gpu"], rel=1e-6)

    def test_task_latencies_bounded_by_makespan(self, graph, platform, profile):
        mapping = rr_layer_mapping(graph, platform)
        result = ExecutionScheduler(platform, profile).schedule(graph, mapping)
        for latency in result.task_latencies.values():
            assert latency <= result.makespan + 1e-12

    def test_cross_device_mapping_adds_transfers(self, graph, platform, profile):
        mapping = rr_layer_mapping(graph, platform)
        result = ExecutionScheduler(platform, profile).schedule(graph, mapping)
        assert any(entry.kind == "transfer" for entry in result.timeline)

    def test_sparse_flag_reduces_latency(self, graph, platform, profile):
        mapping = all_gpu_mapping(graph, platform)
        dense = ExecutionScheduler(platform, profile, sparse=False).schedule(graph, mapping)
        sparse = ExecutionScheduler(platform, profile, sparse=True).schedule(graph, mapping)
        assert sparse.max_task_latency < dense.max_task_latency

    def test_multi_pe_mapping_can_run_tasks_in_parallel(self, graph, platform, profile):
        # Put one network on the GPU and the other on the CPU: the makespan
        # should be below the sum of the two serial latencies.
        assignments = {}
        for node in graph.compute_nodes():
            pe = "gpu" if graph.network_of(node) == "spikeflownet" else "cpu"
            assignments[node] = Assignment(pe, Precision.FP16)
        mapping = MappingCandidate(assignments)
        result = ExecutionScheduler(platform, profile).schedule(graph, mapping)
        total_serial = sum(result.device_busy_time().values())
        assert result.makespan < total_serial


class TestFitnessAndSearch:
    def test_fitness_caches_repeated_candidates(self, graph, platform, profile):
        evaluator = FitnessEvaluator(graph, platform, profile)
        candidate = all_gpu_mapping(graph, platform)
        first = evaluator.evaluate(candidate)
        second = evaluator.evaluate(candidate.copy())
        assert first.fitness == second.fitness
        assert evaluator.cache_hits >= 1
        assert evaluator.evaluations == 1

    def test_fitness_feasible_without_accuracy_models(self, graph, platform, profile):
        evaluator = FitnessEvaluator(graph, platform, profile)
        breakdown = evaluator.evaluate(all_gpu_mapping(graph, platform))
        assert breakdown.feasible
        assert breakdown.fitness == pytest.approx(breakdown.max_task_latency)

    def test_nmp_improves_over_generations(self, graph, platform, profile):
        config = NMPConfig(population_size=10, generations=6, seed=0)
        result = NetworkMapper(graph, platform, profile, config).run()
        assert result.convergence[-1] <= result.convergence[0]
        assert result.best_latency > 0
        assert len(result.history) == 6

    def test_nmp_with_seeds_never_worse_than_seed(self, graph, platform, profile):
        seed_candidate = all_gpu_mapping(graph, platform, Precision.FP16)
        evaluator_reference = FitnessEvaluator(graph, platform, profile)
        seed_fitness = evaluator_reference.evaluate(seed_candidate).fitness
        config = NMPConfig(population_size=8, generations=4, seed=0)
        result = NetworkMapper(
            graph, platform, profile, config, initial_candidates=[seed_candidate]
        ).run()
        assert result.best_breakdown.fitness <= seed_fitness + 1e-12

    def test_nmp_beats_round_robin(self, graph, platform, profile):
        config = NMPConfig(population_size=16, generations=10, seed=1)
        seeds = [rr_network_mapping(graph, platform), rr_layer_mapping(graph, platform)]
        result = NetworkMapper(graph, platform, profile, config, initial_candidates=seeds).run()
        scheduler = ExecutionScheduler(platform, profile, sparse=True)
        rr_latency = scheduler.schedule(graph, rr_network_mapping(graph, platform)).max_task_latency
        assert result.best_latency <= rr_latency

    def test_full_precision_search_uses_only_highest_precision(self, graph, platform, profile):
        config = NMPConfig(population_size=8, generations=3, full_precision_only=True, seed=0)
        result = NetworkMapper(graph, platform, profile, config).run()
        for node, assignment in result.best_candidate.assignments.items():
            pe = platform.pe(assignment.pe)
            assert assignment.precision == pe.highest_supported_precision()

    def test_random_search_runs(self, graph, platform, profile):
        config = NMPConfig(population_size=8, generations=4, seed=0)
        result = RandomSearchMapper(graph, platform, profile, config).run()
        assert result.best_latency > 0
        # Best-so-far curve is non-increasing by construction.
        assert all(b <= a + 1e-12 for a, b in zip(result.convergence, result.convergence[1:]))

    def test_invalid_nmp_config(self):
        with pytest.raises(ValueError):
            NMPConfig(population_size=1)
        with pytest.raises(ValueError):
            NMPConfig(generations=0)
        with pytest.raises(ValueError):
            NMPConfig(elite_fraction=0.0)
