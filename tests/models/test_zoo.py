"""Tests for the model zoo (Table 1 networks)."""

from __future__ import annotations

import pytest

from repro.models import (
    TABLE1_REFERENCE,
    available_networks,
    build_network,
    table1_summary,
)


class TestZoo:
    def test_all_table1_networks_available(self):
        names = available_networks()
        for expected in TABLE1_REFERENCE:
            assert expected in names

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            build_network("resnet50")

    @pytest.mark.parametrize("name", sorted(TABLE1_REFERENCE))
    def test_layer_counts_match_paper(self, name):
        net = build_network(name)
        task, net_type, layers, snn, ann = TABLE1_REFERENCE[name]
        assert net.num_layers == layers
        assert net.num_snn_layers == snn
        assert net.num_ann_layers == ann
        assert net.network_type == net_type

    @pytest.mark.parametrize("name", sorted(TABLE1_REFERENCE))
    def test_graphs_are_connected_dags(self, name):
        net = build_network(name)
        assert len(net.sources()) >= 1
        assert len(net.sinks()) >= 1
        assert net.total_macs > 0
        assert net.total_parameters > 0

    def test_custom_resolution_scales_macs(self):
        small = build_network("spikeflownet", 64, 64)
        large = build_network("spikeflownet", 256, 256)
        assert large.total_macs > small.total_macs
        assert small.num_layers == large.num_layers

    def test_evflownet_is_ann(self):
        net = build_network("evflownet")
        assert net.network_type == "ANN"
        assert net.task == "optical_flow"

    def test_table1_summary_rows(self):
        rows = table1_summary()
        assert len(rows) == len(TABLE1_REFERENCE)
        for row in rows:
            assert row["layers"] == row["paper_layers"]
            assert row["total_gmacs"] > 0

    def test_snn_networks_have_high_sparsity(self):
        net = build_network("adaptive_spikenet")
        assert net.total_effective_macs < 0.4 * net.total_macs
