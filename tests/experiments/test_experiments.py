"""Smoke/shape tests for the experiment harnesses (tiny settings for speed)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentSettings,
    MULTI_TASK_CONFIGS,
    format_fig1,
    format_fig3,
    format_fig5,
    format_fig8,
    format_fig9,
    format_fig10,
    format_table,
    format_table1,
    format_table2,
    run_fig1,
    run_fig3,
    run_fig5,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
)
from repro.core import NMPConfig


TINY = ExperimentSettings(scale=0.12, duration=0.4, num_bins=5, seed=0)


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, ["a", "b"])
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([], ["a"]) == "(no data)"


class TestFig1Fig3Fig5:
    def test_fig1_fields_and_ranges(self):
        result = run_fig1(TINY)
        assert 0.0 < result["mean_occupancy_percent"] < 100.0
        assert result["dense_gmacs_per_inference"] > result["event_proportional_gmacs"]
        assert "wasted operation fraction" in format_fig1(result)

    def test_fig3_ordering(self):
        rows = run_fig3(TINY)
        by_network = {r["network"]: r["mean_occupancy_percent"] for r in rows}
        assert by_network["adaptive_spikenet"] <= by_network["evflownet"]
        assert "network" in format_fig3(rows)

    def test_fig5_burstiness(self):
        result = run_fig5(TINY)
        assert result["total_events"] == sum(result["series"])
        assert result["peak_to_median_ratio"] >= 1.0
        assert "density" in format_fig5(result)


class TestFig8:
    def test_single_network_speedups(self):
        rows = run_fig8(TINY, networks=["dotie"])
        assert len(rows) == 1
        row = rows[0]
        assert row["speedup_e2sf"] > 0
        assert row["ev_edge_speedup"] > 1.0
        assert row["ev_edge_energy_gain"] > 1.0
        assert "speedup_e2sf" in format_fig8(rows)


class TestFig9Fig10:
    def test_fig9_single_config(self):
        rows = run_fig9(
            TINY,
            configs={"all_snn": MULTI_TASK_CONFIGS["all_snn"]},
            nmp_config=NMPConfig(population_size=8, generations=4, seed=0),
        )
        row = rows[0]
        assert row["speedup_vs_rr_network"] > 1.0
        assert row["speedup_vs_rr_layer"] > 1.0
        assert row["nmp_fp_slowdown"] >= 1.0
        assert "config" in format_fig9(rows)

    def test_fig10_convergence_monotone(self):
        result = run_fig10(
            TINY,
            config_name="all_snn",
            nmp_config=NMPConfig(population_size=8, generations=5, seed=0),
        )
        conv = result["evolutionary_convergence"]
        assert all(b <= a + 1e-12 for a, b in zip(conv, conv[1:]))
        assert result["evolutionary_vs_random_speedup"] > 0
        assert "evolutionary" in format_fig10(result)


class TestTables:
    def test_table1_matches_paper(self):
        rows = run_table1()
        assert all(row["layers_match"] for row in rows)
        assert "paper_layers" in format_table1(rows)

    def test_table2_small_degradation(self):
        rows = run_table2(TINY, networks=["spikeflownet", "dotie"])
        for row in rows:
            assert row["degradation"] <= 0.3
            assert row["baseline"] == pytest.approx(row["baseline"])
        assert "ev_edge" in format_table2(rows)
