"""Tests for the declarative scenario layer and the parallel sweep runner."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import OptimizationLevel
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator
from repro.scenarios import (
    BUILTIN_POLICIES,
    ScenarioSpec,
    SweepCell,
    SweepRunner,
    default_registry,
    simulate_cell,
    sweep_grid,
)
from repro.scenarios.cli import main as scenarios_cli

SMALL = dict(num_streams=3, duration=0.3, scale=0.1, num_bins=4)


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _aggregates(report):
    return (
        report.num_streams,
        report.total_inferences,
        report.frames_generated,
        report.frames_dropped,
        report.total_energy,
        report.makespan,
        report.mean_latency,
        report.throughput,
    )


class TestRegistry:
    def test_at_least_five_builtin_families(self, registry):
        assert len(registry.families()) >= 5
        assert set(registry.names()) == set(registry.families())

    def test_compile_respects_stream_count(self, registry):
        for name in registry.names():
            sources = registry.compile(name, **SMALL)
            assert len(sources) == SMALL["num_streams"], name
            assert len({s.name for s in sources}) == len(sources), name

    def test_unknown_names_raise_with_listing(self, registry):
        with pytest.raises(KeyError, match="available"):
            registry.spec("nope")
        with pytest.raises(KeyError, match="available"):
            registry.family("nope")

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(registry.spec("steady"))

    def test_overrides_merge_params(self, registry):
        spec = registry.resolve("hotspot", params={"alpha": 2.5}, num_streams=7)
        assert spec.param("alpha") == 2.5
        assert spec.num_streams == 7
        # The registered spec itself is untouched.
        assert registry.spec("hotspot").num_streams != 7
        assert "alpha" not in registry.spec("hotspot").params


class TestSpec:
    def test_content_hash_stable_and_sensitive(self):
        a = ScenarioSpec(name="x", family="steady", seed=3)
        b = ScenarioSpec(name="x", family="steady", seed=3)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != a.replace(seed=4).content_hash()
        assert a.content_hash() != a.replace(params={"stagger": 0.1}).content_hash()

    def test_dict_roundtrip(self):
        spec = ScenarioSpec(
            name="x", family="churn", num_streams=5, params={"lifetime_fraction": 0.4}
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="steady", num_streams=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="steady", duration=0.0)


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(default_registry().names()))
    def test_each_family_is_deterministic(self, registry, platform, name):
        # Same spec + seed -> identical compiled traffic and identical
        # MultiStreamReport aggregates, run to run.
        spec = registry.resolve(name, **SMALL)
        first = MultiStreamSimulator(platform, registry.compile(spec)).run()
        second = MultiStreamSimulator(platform, registry.compile(spec)).run()
        assert _aggregates(first) == _aggregates(second)
        assert first.total_inferences > 0

    def test_seed_changes_arrival_process(self, registry):
        base = registry.resolve("bursty", **SMALL)
        offsets_a = [s.start_offset for s in registry.compile(base)]
        offsets_b = [s.start_offset for s in registry.compile(base.replace(seed=9))]
        assert offsets_a != offsets_b

    def test_churn_sets_leave_windows(self, registry):
        spec = registry.resolve("churn", **dict(SMALL, num_streams=4))
        sources = registry.compile(spec)
        leavers = [s for s in sources if s.stop_time is not None]
        assert leavers
        for source in leavers:
            assert source.end_time <= source.stop_time + 1e-12
        churned = sum(len(s.generate_frames()) for s in sources)
        full = sum(
            len(s.generate_frames())
            for s in (
                type(s)(
                    name=s.name,
                    sequence=s.sequence,
                    network=s.network,
                    config=s.config,
                    start_offset=s.start_offset,
                )
                for s in sources
            )
        )
        assert churned < full

    def test_hotspot_concentrates_signatures(self, registry):
        spec = registry.resolve("hotspot", **dict(SMALL, num_streams=8))
        sources = registry.compile(spec)
        nets = [s.network.name for s in sources]
        # Zipf skew: the most popular network serves more than half the fleet.
        assert max(nets.count(n) for n in set(nets)) > len(sources) // 2

    def test_mixed_fleet_spans_the_ladder(self, registry):
        spec = registry.resolve("mixed_fleet", **dict(SMALL, num_streams=4))
        levels = {s.config.optimization for s in registry.compile(spec)}
        assert levels == {
            OptimizationLevel.BASELINE,
            OptimizationLevel.E2SF,
            OptimizationLevel.E2SF_DSFA,
            OptimizationLevel.FULL,
        }


class TestSweep:
    def _cells(self, policies=("batched",), scenarios=("steady", "hotspot")):
        return sweep_grid(scenarios, policies=policies, **SMALL)

    def test_workload_seed_ignores_platform_and_policy(self):
        spec = default_registry().resolve("steady", **SMALL)
        cells = [
            SweepCell(spec, platform="xavier_agx", policy=BUILTIN_POLICIES["batched"]),
            SweepCell(spec, platform="orin_nano", policy=BUILTIN_POLICIES["unbatched"]),
        ]
        assert cells[0].workload_seed == cells[1].workload_seed == spec.seed
        assert cells[0].content_hash() != cells[1].content_hash()

    def test_sweep_rows_reproduce_outside_the_runner(self, platform):
        # A sweep row must be reproducible with registry.compile(spec) on the
        # unmodified spec (no hidden seed rewriting inside simulate_cell).
        registry = default_registry()
        spec = registry.resolve("bursty", **SMALL)
        row = simulate_cell(SweepCell(spec))
        # Rows record their cost-model mode so they can be replayed with the
        # same cost semantics the policy selected.
        report = MultiStreamSimulator(
            platform, registry.compile(spec), cost_mode=row["cost_mode"]
        ).run()
        assert row["seed"] == spec.seed
        assert row["cost_mode"] == "profile"
        assert row["inferences"] == report.total_inferences
        assert row["throughput_fps"] == pytest.approx(report.throughput)
        assert row["frames_dropped"] == report.frames_dropped

    def test_unknown_platform_rejected(self):
        spec = default_registry().resolve("steady", **SMALL)
        with pytest.raises(KeyError):
            SweepCell(spec, platform="tpu9000")

    def test_policy_optimization_override(self):
        spec = default_registry().resolve("mixed_fleet", **SMALL)
        policy = BUILTIN_POLICIES["batched"]
        row = simulate_cell(
            SweepCell(spec, policy=type(policy)(
                name="forced", optimization=OptimizationLevel.E2SF.value
            ))
        )
        assert row["policy"] == "forced"
        assert row["inferences"] > 0

    def test_cache_roundtrip_and_dirty_cells(self, tmp_path):
        cells = self._cells()
        runner = SweepRunner(cache_dir=tmp_path / "cache", workers=1)
        cold = runner.run(cells)
        assert (cold.simulated, cold.from_cache) == (len(cells), 0)
        warm = runner.run(cells)
        assert (warm.simulated, warm.from_cache) == (0, len(cells))
        assert [r["hash"] for r in warm.rows] == [r["hash"] for r in cold.rows]
        # Editing one spec dirties exactly that cell.
        edited = list(cells)
        edited[0] = SweepCell(
            edited[0].scenario.replace(seed=123),
            platform=edited[0].platform,
            policy=edited[0].policy,
        )
        partial = runner.run(edited)
        assert (partial.simulated, partial.from_cache) == (1, len(cells) - 1)
        # force re-simulates everything.
        forced = runner.run(cells, force=True)
        assert forced.simulated == len(cells)

    def test_corrupt_cache_entry_is_dirty(self, tmp_path):
        cells = self._cells(scenarios=("steady",))
        runner = SweepRunner(cache_dir=tmp_path / "cache", workers=1)
        runner.run(cells)
        path = runner._cache_path(cells[0].content_hash())
        path.write_text("{not json", encoding="utf-8")
        report = runner.run(cells)
        assert report.simulated == 1

    def test_parallel_matches_serial(self, tmp_path):
        cells = self._cells(policies=("batched", "unbatched"))
        serial = SweepRunner(workers=1).run(cells)
        parallel = SweepRunner(cache_dir=tmp_path / "cache", workers=2).run(cells)
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "from_cache"} for r in rows
        ]
        assert strip(parallel.rows) == strip(serial.rows)
        assert parallel.workers == 2

    def test_policy_shards_recorded_and_cache_distinct(self):
        spec = default_registry().resolve("mixed_fleet", **SMALL)
        unsharded = SweepCell(spec)
        sharded = SweepCell(
            spec, policy=dataclasses.replace(unsharded.policy, shards=2)
        )
        # The shard count is part of the cell's cache identity: rows cached
        # by unsharded runs must never alias sharded ones.
        assert unsharded.content_hash() != sharded.content_hash()
        row = simulate_cell(sharded)
        assert row["shards"] == 2
        assert simulate_cell(unsharded)["shards"] == 1

    def test_sharded_cells_run_inside_pool_workers(self, tmp_path):
        # Daemonic pool workers cannot fork shard processes; the sharded
        # simulator must fall back to the inline protocol and still match
        # a serial run of the same cells bit-for-bit.
        policy = dataclasses.replace(
            BUILTIN_POLICIES["batched"], name="batched2", shards=2
        )
        cells = self._cells(policies=(policy,), scenarios=("mixed_fleet",))
        serial = SweepRunner(workers=1).run(cells)
        parallel = SweepRunner(cache_dir=tmp_path / "cache", workers=2).run(cells)
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "from_cache"} for r in rows
        ]
        assert strip(parallel.rows) == strip(serial.rows)
        assert all(row["shards"] == 2 for row in serial.rows)


class TestCLI:
    def test_list(self, capsys):
        assert scenarios_cli(["list"]) == 0
        out = capsys.readouterr().out
        for name in default_registry().names():
            assert name in out

    def test_run(self, capsys):
        code = scenarios_cli(
            ["run", "steady", "--streams", "2", "--duration", "0.25", "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario steady" in out
        assert "steady:00" in out

    def test_run_with_shards(self, capsys):
        code = scenarios_cli(
            [
                "run", "mixed_fleet",
                "--shards", "2",
                "--streams", "4",
                "--duration", "0.25",
                "--scale", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario mixed_fleet" in out

    def test_sweep_with_cache(self, capsys, tmp_path):
        args = [
            "sweep",
            "--scenarios", "steady,churn",
            "--policies", "batched",
            "--workers", "2",
            "--streams", "2",
            "--duration", "0.25",
            "--scale", "0.1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert scenarios_cli(args) == 0
        first = capsys.readouterr().out
        assert "simulated=2" in first
        assert scenarios_cli(args) == 0
        second = capsys.readouterr().out
        assert "simulated=0" in second
        assert "from_cache=2" in second
