"""Tests for the accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    absolute_relative_error,
    average_depth_error,
    average_endpoint_error,
    box_iou,
    confusion_matrix,
    flow_outlier_ratio,
    geometric_mean,
    mask_iou,
    mean_iou,
    pixel_accuracy,
    relative_change,
    summarize,
)


class TestFlowMetrics:
    def test_perfect_prediction_zero_aee(self):
        flow = np.random.default_rng(0).normal(size=(2, 8, 8))
        assert average_endpoint_error(flow, flow) == 0.0

    def test_known_offset(self):
        gt = np.zeros((2, 4, 4))
        pred = np.zeros((2, 4, 4))
        pred[0] += 3.0
        pred[1] += 4.0
        assert average_endpoint_error(pred, gt) == pytest.approx(5.0)

    def test_mask_restricts_evaluation(self):
        gt = np.zeros((2, 4, 4))
        pred = np.zeros((2, 4, 4))
        pred[0, 0, 0] = 10.0
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        assert average_endpoint_error(pred, gt, mask) == 0.0

    def test_empty_mask_gives_nan(self):
        gt = np.zeros((2, 4, 4))
        assert np.isnan(average_endpoint_error(gt, gt, np.zeros((4, 4), dtype=bool)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_endpoint_error(np.zeros((2, 4, 4)), np.zeros((2, 5, 5)))
        with pytest.raises(ValueError):
            average_endpoint_error(np.zeros((3, 4, 4)), np.zeros((3, 4, 4)))

    def test_outlier_ratio(self):
        gt = np.zeros((2, 2, 2))
        pred = np.zeros((2, 2, 2))
        pred[0, 0, 0] = 10.0
        assert flow_outlier_ratio(pred, gt, threshold=3.0) == pytest.approx(0.25)


class TestSegmentationMetrics:
    def test_perfect_prediction(self):
        labels = np.array([[0, 1], [1, 2]])
        assert mean_iou(labels, labels) == pytest.approx(100.0)
        assert pixel_accuracy(labels, labels) == 1.0

    def test_confusion_matrix_counts(self):
        gt = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(pred, gt)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 2

    def test_half_overlap_miou(self):
        gt = np.array([[1, 1, 0, 0]])
        pred = np.array([[1, 0, 0, 0]])
        # class0: inter 2, union 3; class1: inter 1, union 2
        expected = 100 * (2 / 3 + 1 / 2) / 2
        assert mean_iou(pred, gt, 2) == pytest.approx(expected)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1]), np.array([0]))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            pixel_accuracy(np.zeros((2, 2)), np.zeros((3, 3)))


class TestDepthMetrics:
    def test_perfect_depth(self):
        depth = np.full((4, 4), 2.0)
        assert average_depth_error(depth, depth) == 0.0
        assert absolute_relative_error(depth, depth) == 0.0

    def test_log_error_value(self):
        gt = np.full((2, 2), 1.0)
        pred = np.full((2, 2), np.e)
        assert average_depth_error(pred, gt) == pytest.approx(1.0)

    def test_invalid_pixels_ignored(self):
        gt = np.array([[1.0, np.inf], [0.0, 2.0]])
        pred = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert average_depth_error(pred, gt) == 0.0

    def test_all_invalid_gives_nan(self):
        gt = np.full((2, 2), np.inf)
        assert np.isnan(average_depth_error(gt, gt))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_depth_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestTrackingMetrics:
    def test_identical_boxes(self):
        assert box_iou((0, 0, 10, 10), (0, 0, 10, 10)) == 1.0

    def test_disjoint_boxes(self):
        assert box_iou((0, 0, 5, 5), (10, 10, 20, 20)) == 0.0

    def test_half_overlap(self):
        assert box_iou((0, 0, 10, 10), (5, 0, 15, 10)) == pytest.approx(50 / 150)

    def test_none_or_degenerate(self):
        assert box_iou(None, (0, 0, 1, 1)) == 0.0
        assert box_iou((0, 0, 0, 5), (0, 0, 1, 1)) == 0.0

    def test_mask_iou(self):
        a = np.array([[1, 1], [0, 0]])
        b = np.array([[1, 0], [0, 0]])
        assert mask_iou(a, b) == pytest.approx(0.5)
        assert mask_iou(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(geometric_mean([]))

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_relative_change(self):
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)
        assert relative_change(0.0, 0.0) == 0.0
        assert relative_change(0.0, 1.0) == float("inf")

    def test_summarize_keys(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)
        assert np.isnan(summarize([])["mean"])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_property_geometric_mean_bounded(values):
    """Property: the geometric mean lies between min and max."""
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=100))
def test_property_miou_perfect_is_100(num_classes, seed):
    """Property: mIOU of a prediction against itself is always 100 %."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=(12, 12))
    assert mean_iou(labels, labels, num_classes) == pytest.approx(100.0)
