"""Shared fixtures: small, fast synthetic sequences and frames."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events import (
    DVSCamera,
    EventStream,
    MovingBarsScene,
    SensorGeometry,
    generate_sequence,
)


@pytest.fixture(scope="session")
def small_geometry() -> SensorGeometry:
    """A small sensor used throughout the tests to keep runtimes low."""
    return SensorGeometry(width=64, height=48)


@pytest.fixture(scope="session")
def bars_sequence(small_geometry):
    """Deterministic moving-bars scene rendered through the DVS camera."""
    scene = MovingBarsScene(
        geometry=small_geometry, duration=0.5, frame_rate=30.0, seed=0
    ).generate()
    camera = DVSCamera(geometry=small_geometry, interpolation_steps=2, seed=0)
    return camera.simulate(scene.frames, scene.timestamps)


@pytest.fixture(scope="session")
def bars_events(bars_sequence) -> EventStream:
    """The event stream of the moving-bars scene."""
    return bars_sequence.events


@pytest.fixture(scope="session")
def indoor_sequence():
    """Small-scale indoor_flying1-like sequence (MVSEC stand-in)."""
    return generate_sequence("indoor_flying1", scale=0.2, duration=1.0, seed=0)


@pytest.fixture(scope="session")
def random_events(small_geometry) -> EventStream:
    """A reproducible random event stream (not sorted on purpose)."""
    rng = np.random.default_rng(42)
    n = 5000
    x = rng.integers(0, small_geometry.width, n)
    y = rng.integers(0, small_geometry.height, n)
    t = rng.uniform(0.0, 1.0, n)
    p = rng.choice([-1, 1], n)
    return EventStream(x, y, t, p, small_geometry)
