"""Tests for dense frame builders and conversion overhead accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events import EventStream, SensorGeometry
from repro.frames import (
    ConversionCost,
    assign_event_bins,
    bin_boundaries,
    decode_cost,
    dense_to_sparse,
    discretized_event_bins,
    encode_cost,
    ev_flownet_frame,
    event_count_frame,
    events_to_sparse_cost,
    frame_occupancy,
    sparse_to_dense,
    time_surface,
)


@pytest.fixture()
def simple_stream():
    geometry = SensorGeometry(width=16, height=12)
    x = np.array([0, 1, 2, 3, 3])
    y = np.array([0, 1, 2, 3, 3])
    t = np.array([0.0, 0.25, 0.5, 0.75, 0.9])
    p = np.array([1, -1, 1, 1, -1])
    return EventStream(x, y, t, p, geometry)


class TestBinning:
    def test_bin_boundaries_count(self):
        edges = bin_boundaries(0.0, 1.0, 5)
        assert edges.shape == (6,)
        assert edges[0] == 0.0 and edges[-1] == 1.0

    def test_bin_boundaries_invalid(self):
        with pytest.raises(ValueError):
            bin_boundaries(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            bin_boundaries(1.0, 1.0, 2)

    def test_assign_event_bins_equation1(self):
        # biS = (1.0 - 0.0) / 4 = 0.25; EB_k = floor(t / 0.25)
        t = np.array([0.0, 0.1, 0.25, 0.6, 0.99, 1.0])
        bins = assign_event_bins(t, 0.0, 1.0, 4)
        assert list(bins) == [0, 0, 1, 2, 3, 3]

    def test_assign_event_bins_clamps_last(self):
        bins = assign_event_bins(np.array([1.0]), 0.0, 1.0, 10)
        assert bins[0] == 9

    def test_assign_rejects_invalid(self):
        with pytest.raises(ValueError):
            assign_event_bins(np.array([0.0]), 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            assign_event_bins(np.array([0.0]), 1.0, 0.5, 2)


class TestDenseFrames:
    def test_event_count_frame_totals(self, simple_stream):
        frame = event_count_frame(simple_stream)
        assert frame.shape == (2, 12, 16)
        assert frame[0].sum() == 3  # three positive events
        assert frame[1].sum() == 2  # two negative events

    def test_event_count_frame_windowed(self, simple_stream):
        frame = event_count_frame(simple_stream, t_start=0.2, t_end=0.6)
        assert frame.sum() == 2

    def test_time_surface_latest_timestamp_wins(self):
        geometry = SensorGeometry(width=8, height=8)
        stream = EventStream([2, 2], [3, 3], [0.1, 0.6], [1, 1], geometry)
        surface = time_surface(stream, 0.0, 1.0, normalize=False)
        assert surface[0, 3, 2] == pytest.approx(0.6)

    def test_time_surface_normalized_range(self, simple_stream):
        surface = time_surface(simple_stream, 0.0, 1.0, normalize=True)
        assert surface.min() >= 0.0
        assert surface.max() <= 1.0

    def test_ev_flownet_frame_has_four_channels(self, simple_stream):
        frame = ev_flownet_frame(simple_stream, 0.0, 1.0)
        assert frame.shape == (4, 12, 16)

    def test_discretized_event_bins_conserves_events(self, simple_stream):
        grid = discretized_event_bins(simple_stream, 0.0, 1.0, 4)
        assert grid.shape == (4, 2, 12, 16)
        assert grid.sum() == len(simple_stream)

    def test_discretized_empty_window(self, simple_stream):
        grid = discretized_event_bins(simple_stream, 5.0, 6.0, 4)
        assert grid.sum() == 0

    def test_frame_occupancy_values(self):
        frame = np.zeros((2, 10, 10))
        frame[0, 0, 0] = 1
        frame[1, 5, 5] = 2
        assert frame_occupancy(frame) == pytest.approx(0.02)

    def test_frame_occupancy_batched(self):
        grid = np.zeros((4, 2, 10, 10))
        grid[0, 0, 0, 0] = 1
        assert frame_occupancy(grid) == pytest.approx(0.01 / 4)

    def test_frame_occupancy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            frame_occupancy(np.zeros((10, 10)))


class TestConversionCosts:
    def test_dense_to_sparse_matches_analytic(self):
        dense = np.zeros((2, 20, 30))
        dense[0, 1, 2] = 3
        dense[1, 4, 5] = 1
        frame, cost = dense_to_sparse(dense)
        assert frame.num_active == 2
        analytic = encode_cost(20, 30, 2)
        assert cost.operations == analytic.operations
        assert cost.bytes_written == analytic.bytes_written

    def test_sparse_to_dense_cost(self):
        dense = np.zeros((2, 20, 30))
        dense[0, 1, 2] = 3
        frame, _ = dense_to_sparse(dense)
        rebuilt, cost = sparse_to_dense(frame)
        assert np.allclose(rebuilt, dense)
        assert cost.operations == decode_cost(20, 30, 1).operations

    def test_cost_addition(self):
        total = encode_cost(10, 10, 5) + decode_cost(10, 10, 5)
        assert total.operations == encode_cost(10, 10, 5).operations + decode_cost(10, 10, 5).operations
        assert total.total_bytes > 0

    def test_direct_path_cheaper_for_sparse_input(self):
        """E2SF's core claim: events->sparse is cheaper than events->dense->sparse
        when the frame is sparse, because it never scans the dense pixel grid."""
        height, width = 260, 346
        num_events = 500
        nnz = 400
        direct = events_to_sparse_cost(num_events, nnz)
        via_dense = encode_cost(height, width, nnz)
        assert direct.operations < via_dense.operations
        assert direct.total_bytes < via_dense.total_bytes

    def test_dense_path_can_win_when_dense(self):
        """With near-full occupancy the dense scan is no longer the bottleneck."""
        height, width = 32, 32
        nnz = height * width
        num_events = 20 * nnz
        direct = events_to_sparse_cost(num_events, nnz)
        via_dense = encode_cost(height, width, nnz)
        assert direct.operations > via_dense.operations
