"""Tests for the sparse COO frame representation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import SparseFrame, SparseFrameBatch


def random_sparse_frame(seed=0, h=24, w=32, n_events=200, t_start=0.0, t_end=0.1):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, w, n_events)
    y = rng.integers(0, h, n_events)
    p = rng.choice([-1, 1], n_events)
    return SparseFrame.from_events(x, y, p, h, w, t_start, t_end)


class TestConstruction:
    def test_from_events_accumulates_polarities(self):
        frame = SparseFrame.from_events(
            x=[1, 1, 2], y=[3, 3, 4], p=[1, 1, -1], height=8, width=8
        )
        assert frame.num_active == 2
        dense = frame.to_dense()
        assert dense[0, 3, 1] == 2  # two positive events at (1, 3)
        assert dense[1, 4, 2] == 1  # one negative event at (2, 4)

    def test_empty_frame(self):
        frame = SparseFrame.empty(8, 8)
        assert frame.num_active == 0
        assert frame.density == 0.0
        assert frame.num_events == 0.0
        assert np.all(frame.to_dense() == 0)

    def test_from_dense_roundtrip(self):
        frame = random_sparse_frame(seed=1)
        dense = frame.to_dense()
        rebuilt = SparseFrame.from_dense(dense)
        assert rebuilt == frame

    def test_from_dense_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            SparseFrame.from_dense(np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            SparseFrame.from_dense(np.zeros((4, 4)))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            SparseFrame([10], [0], [1.0], [0.0], height=4, width=4)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            SparseFrame([0, 1], [0], [1.0], [0.0], 4, 4)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SparseFrame.empty(0, 4)


class TestProperties:
    def test_density(self):
        frame = SparseFrame.from_events([0, 1], [0, 1], [1, 1], height=10, width=10)
        assert frame.density == pytest.approx(2 / 100)

    def test_num_events_counts_all(self):
        frame = SparseFrame.from_events(
            [0, 0, 1], [0, 0, 1], [1, -1, 1], height=4, width=4
        )
        assert frame.num_events == 3

    def test_memory_footprints(self):
        frame = random_sparse_frame()
        assert frame.nnz_bytes == frame.num_active * 24
        assert frame.dense_bytes == 2 * frame.height * frame.width * 4

    def test_duration(self):
        frame = SparseFrame.empty(4, 4, t_start=0.2, t_end=0.5)
        assert frame.duration == pytest.approx(0.3)

    def test_repr_contains_nnz(self):
        assert "nnz" in repr(random_sparse_frame())

    def test_scale_and_prune(self):
        frame = random_sparse_frame()
        scaled = frame.scale(0.0).prune_zeros()
        assert scaled.num_active == 0


class TestMergeOperations:
    def test_add_matches_dense_sum(self):
        a = random_sparse_frame(seed=1)
        b = random_sparse_frame(seed=2)
        merged = SparseFrame.add([a, b])
        assert np.allclose(merged.to_dense(), a.to_dense() + b.to_dense())

    def test_average_matches_dense_mean(self):
        frames = [random_sparse_frame(seed=s) for s in range(4)]
        merged = SparseFrame.average(frames)
        expected = np.mean([f.to_dense() for f in frames], axis=0)
        assert np.allclose(merged.to_dense(), expected)

    def test_add_time_span(self):
        a = random_sparse_frame(seed=1, t_start=0.0, t_end=0.1)
        b = random_sparse_frame(seed=2, t_start=0.1, t_end=0.2)
        merged = SparseFrame.add([a, b])
        assert merged.t_start == 0.0
        assert merged.t_end == pytest.approx(0.2)

    def test_add_empty_list_rejected(self):
        with pytest.raises(ValueError):
            SparseFrame.add([])
        with pytest.raises(ValueError):
            SparseFrame.average([])

    def test_add_mixed_dimensions_rejected(self):
        a = random_sparse_frame(h=24, w=32)
        b = random_sparse_frame(h=16, w=16)
        with pytest.raises(ValueError):
            SparseFrame.add([a, b])

    def test_density_change_symmetric_and_bounded(self):
        a = random_sparse_frame(seed=1, n_events=50)
        b = random_sparse_frame(seed=2, n_events=400)
        assert a.density_change(b) == pytest.approx(b.density_change(a))
        assert 0.0 <= a.density_change(b) <= 1.0

    def test_density_change_identical_is_zero(self):
        a = random_sparse_frame(seed=1)
        assert a.density_change(a) == 0.0

    def test_density_change_both_empty(self):
        a = SparseFrame.empty(8, 8)
        assert a.density_change(SparseFrame.empty(8, 8)) == 0.0


class TestBatch:
    def test_batch_dense_shape(self):
        frames = [random_sparse_frame(seed=s) for s in range(3)]
        batch = SparseFrameBatch(frames)
        assert len(batch) == 3
        assert batch.to_dense().shape == (3, 2, 24, 32)

    def test_batch_time_span_and_events(self):
        frames = [
            random_sparse_frame(seed=1, t_start=0.0, t_end=0.1),
            random_sparse_frame(seed=2, t_start=0.1, t_end=0.25),
        ]
        batch = SparseFrameBatch(frames)
        assert batch.t_start == 0.0
        assert batch.t_end == pytest.approx(0.25)
        assert batch.num_events == pytest.approx(sum(f.num_events for f in frames))

    def test_batch_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            SparseFrameBatch([random_sparse_frame(h=8, w=8), random_sparse_frame(h=16, w=16)])

    def test_batch_concatenate(self):
        b1 = SparseFrameBatch([random_sparse_frame(seed=1)])
        b2 = SparseFrameBatch([random_sparse_frame(seed=2), random_sparse_frame(seed=3)])
        merged = SparseFrameBatch.concatenate([b1, b2])
        assert len(merged) == 3
        assert merged[0] == b1[0]

    def test_empty_batch(self):
        batch = SparseFrameBatch([])
        assert batch.mean_density == 0.0
        assert batch.num_events == 0.0


class TestEquality:
    def test_permuted_site_order_is_equal(self):
        frame = random_sparse_frame(seed=5)
        rng = np.random.default_rng(0)
        perm = rng.permutation(frame.num_active)
        shuffled = SparseFrame(
            frame.rows[perm], frame.cols[perm], frame.pos[perm], frame.neg[perm],
            frame.height, frame.width, frame.t_start, frame.t_end,
        )
        assert shuffled == frame
        assert frame == shuffled

    def test_eq_canonicalizes_each_side_once(self, monkeypatch):
        a = random_sparse_frame(seed=6)
        b = random_sparse_frame(seed=6)
        calls = {"n": 0}
        original = SparseFrame._canonical

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(SparseFrame, "_canonical", counting)
        assert a == b
        assert calls["n"] == 2

    def test_eq_differs_on_values_and_dims(self):
        a = random_sparse_frame(seed=7)
        assert a != a.scale(2.0)
        assert a != random_sparse_frame(seed=7, h=12, w=64)
        assert a != "not a frame"


class TestToDense:
    def test_matches_reference_on_duplicate_coordinates(self):
        # Construction via SparseFrame() does not forbid duplicate sites;
        # the bincount scatter must accumulate them exactly like np.add.at.
        frame = SparseFrame(
            [1, 1, 1, 2], [3, 3, 3, 0], [1.5, 2.0, 0.25, 1.0], [0.5, 0.0, 1.0, 0.0],
            height=4, width=5,
        )
        assert np.array_equal(frame.to_dense(), frame.to_dense_reference())
        assert frame.to_dense()[0, 1, 3] == 1.5 + 2.0 + 0.25

    def test_matches_reference_on_random_frames(self):
        for seed in range(5):
            frame = random_sparse_frame(seed=seed)
            assert np.array_equal(frame.to_dense(), frame.to_dense_reference())
        empty = SparseFrame.empty(8, 8)
        assert np.array_equal(empty.to_dense(), empty.to_dense_reference())


class TestFromEventsValidation:
    def test_zero_polarity_rejected(self):
        # p == 0 events used to vanish silently (neither channel counted
        # them); they must be rejected as malformed input instead.
        with pytest.raises(ValueError):
            SparseFrame.from_events([1, 2], [1, 2], [1, 0], 8, 8)

    def test_nonzero_polarities_accepted(self):
        frame = SparseFrame.from_events([1, 2], [1, 2], [2, -3], 8, 8)
        assert frame.num_events == 2.0


@settings(max_examples=25, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=5),
    n_events=st.integers(min_value=0, max_value=300),
)
def test_property_add_conserves_event_count(seeds, n_events):
    """Property: cAdd merging conserves the total accumulated event count."""
    frames = [random_sparse_frame(seed=s, n_events=n_events) for s in seeds]
    merged = SparseFrame.add(frames)
    assert merged.num_events == pytest.approx(sum(f.num_events for f in frames))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000), n=st.integers(min_value=0, max_value=500))
def test_property_dense_roundtrip(seed, n):
    """Property: sparse -> dense -> sparse is the identity."""
    frame = random_sparse_frame(seed=seed, n_events=n)
    assert SparseFrame.from_dense(frame.to_dense()) == frame


class TestStackBackedBatch:
    def _stack(self, n=5):
        from repro.frames import FrameStack

        frames = [
            random_sparse_frame(seed=s, t_start=0.1 * s, t_end=0.1 * (s + 1))
            for s in range(n)
        ]
        return frames, FrameStack.from_frames(frames)

    def test_from_stack_matches_frame_backed(self):
        frames, stack = self._stack()
        stacked = SparseFrameBatch.from_stack(stack, 1, 4)
        listed = SparseFrameBatch(frames[1:4])
        assert len(stacked) == 3
        assert stacked.stack is stack
        assert stacked.stack_range == (1, 4)
        assert stacked.t_start == listed.t_start
        assert stacked.t_end == listed.t_end
        assert stacked.num_events == listed.num_events
        assert stacked.mean_density == listed.mean_density
        assert stacked.frame_densities() == listed.frame_densities()
        for view, frame in zip(stacked, frames[1:4]):
            assert view == frame

    def test_from_stack_defaults_to_whole_stack(self):
        frames, stack = self._stack()
        batch = SparseFrameBatch.from_stack(stack)
        assert len(batch) == len(frames)
        assert batch.stack_range == (0, len(frames))

    def test_from_stack_bounds_checked(self):
        _, stack = self._stack(n=3)
        with pytest.raises(IndexError):
            SparseFrameBatch.from_stack(stack, -1, 2)
        with pytest.raises(IndexError):
            SparseFrameBatch.from_stack(stack, 2, 1)
        with pytest.raises(IndexError):
            SparseFrameBatch.from_stack(stack, 0, 4)

    def test_frame_backed_batch_has_no_stack(self):
        batch = SparseFrameBatch([random_sparse_frame(seed=1)])
        assert batch.stack is None
        assert batch.stack_range is None

    def test_to_dense_matches_reference_and_frame_backed(self):
        frames, stack = self._stack()
        stacked = SparseFrameBatch.from_stack(stack, 1, 5)
        assert np.array_equal(stacked.to_dense(), stacked.to_dense_reference())
        assert np.array_equal(
            stacked.to_dense(), SparseFrameBatch(frames[1:5]).to_dense()
        )

    def test_to_dense_empty_range(self):
        _, stack = self._stack()
        empty = SparseFrameBatch.from_stack(stack, 2, 2)
        assert empty.to_dense().shape == (0, 2, 0, 0)
        assert empty.num_events == 0.0
        assert empty.mean_density == 0.0

    def test_concatenate_adjacent_views_stays_stack_backed(self):
        _, stack = self._stack()
        left = SparseFrameBatch.from_stack(stack, 0, 2)
        right = SparseFrameBatch.from_stack(stack, 2, 5)
        merged = SparseFrameBatch.concatenate([left, right])
        assert merged.stack is stack
        assert merged.stack_range == (0, 5)
        assert len(merged) == 5

    def test_concatenate_non_adjacent_falls_back_to_frames(self):
        frames, stack = self._stack()
        left = SparseFrameBatch.from_stack(stack, 0, 2)
        right = SparseFrameBatch.from_stack(stack, 3, 5)
        merged = SparseFrameBatch.concatenate([left, right])
        assert merged.stack is None
        assert len(merged) == 4
        for view, frame in zip(merged, frames[0:2] + frames[3:5]):
            assert view == frame

    def test_concatenate_mixed_backings(self):
        frames, stack = self._stack()
        stacked = SparseFrameBatch.from_stack(stack, 0, 2)
        listed = SparseFrameBatch([random_sparse_frame(seed=9)])
        merged = SparseFrameBatch.concatenate([stacked, listed])
        assert merged.stack is None
        assert len(merged) == 3
