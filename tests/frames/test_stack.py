"""Tests for the columnar FrameStack data plane and its segmented kernels."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.frames import HAS_NUMBA, FrameStack, SparseFrame, jit_ifnumba, segment_add, segment_average
from repro.frames.sparse import _grouped_reduce


def random_sparse_frame(seed=0, h=24, w=32, n_events=200, t_start=0.0, t_end=0.1):
    rng = np.random.default_rng(seed)
    return SparseFrame.from_events(
        rng.integers(0, w, n_events),
        rng.integers(0, h, n_events),
        rng.choice([-1, 1], n_events),
        h,
        w,
        t_start,
        t_end,
    )


def frames_bit_identical(a: SparseFrame, b: SparseFrame) -> bool:
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


def make_frames(n=6, h=24, w=32, nnz=120):
    return [
        random_sparse_frame(seed=i, h=h, w=w, n_events=nnz, t_start=0.1 * i, t_end=0.1 * (i + 1))
        for i in range(n)
    ]


class TestConstruction:
    def test_from_frames_roundtrip(self):
        frames = make_frames()
        stack = FrameStack.from_frames(frames)
        assert len(stack) == stack.num_frames == len(frames)
        assert stack.total_active == sum(f.num_active for f in frames)
        for original, view in zip(frames, stack):
            assert frames_bit_identical(original, view)

    def test_from_frames_keeps_empty_frames(self):
        frames = [
            random_sparse_frame(seed=1, t_start=0.0, t_end=0.1),
            SparseFrame.empty(24, 32, 0.1, 0.2),
            random_sparse_frame(seed=2, t_start=0.2, t_end=0.3),
        ]
        stack = FrameStack.from_frames(frames)
        assert stack.frame(1).num_active == 0
        assert stack.frame(1).t_start == 0.1
        assert list(stack.nnz_counts()) == [f.num_active for f in frames]

    def test_from_frames_rejects_empty_list(self):
        with pytest.raises(ValueError):
            FrameStack.from_frames([])

    def test_from_frames_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            FrameStack.from_frames(
                [random_sparse_frame(h=24, w=32), random_sparse_frame(h=16, w=32)]
            )

    def test_init_validates_offsets(self):
        f = random_sparse_frame()
        n = f.num_active
        good = np.array([0, n], dtype=np.int64)
        FrameStack(f.rows, f.cols, f.pos, f.neg, good, [0.0], [0.1], 24, 32)
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([1, n]), [0.0], [0.1], 24, 32
            )
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([0, n - 1]), [0.0], [0.1], 24, 32
            )
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([0, n, n - 1, n]),
                [0.0, 0.1, 0.2], [0.1, 0.2, 0.3], 24, 32,
            )

    def test_init_validates_time_columns(self):
        f = random_sparse_frame()
        offsets = np.array([0, f.num_active], dtype=np.int64)
        with pytest.raises(ValueError):
            FrameStack(f.rows, f.cols, f.pos, f.neg, offsets, [0.0, 0.5], [0.1], 24, 32)

    def test_init_validates_bounds(self):
        with pytest.raises(ValueError):
            FrameStack([50], [0], [1.0], [0.0], np.array([0, 1]), [0.0], [0.1], 24, 32)


class TestViews:
    def test_frame_views_are_zero_copy(self):
        stack = FrameStack.from_frames(make_frames())
        view = stack.frame(2)
        assert np.shares_memory(view.rows, stack.rows)
        assert np.shares_memory(view.pos, stack.pos)
        # The key cache is seeded from the stack's column only when that
        # column already exists — never computed just to seed one view.
        assert view._flat is None
        stack.flat_buffer()
        assert np.shares_memory(stack.frame(2).flat_keys(), stack.flat_buffer())

    def test_frame_index_out_of_range(self):
        stack = FrameStack.from_frames(make_frames(n=3))
        with pytest.raises(IndexError):
            stack.frame(3)
        with pytest.raises(IndexError):
            stack.frame(-1)

    def test_view_flat_keys_match_recomputed(self):
        stack = FrameStack.from_frames(make_frames())
        for view in stack.frames():
            expected = view.rows.astype(np.int64) * view.width + view.cols
            assert np.array_equal(view.flat_keys(), expected)

    def test_views_survive_pickling(self):
        # Zero-copy views must pickle standalone (the sharded runtime ships
        # frames through worker pipes) and drop the stack-aliased key cache.
        stack = FrameStack.from_frames(make_frames())
        view = stack.frame(1)
        clone = pickle.loads(pickle.dumps(view))
        assert frames_bit_identical(view, clone)
        assert clone._flat is None


class TestVectorisedQueries:
    def test_densities_match_per_frame_property(self):
        stack = FrameStack.from_frames(make_frames())
        expected = [stack.frame(i).density for i in range(len(stack))]
        assert np.array_equal(stack.densities(), expected)

    def test_event_counts_match_per_frame_property(self):
        frames = make_frames()
        frames.insert(2, SparseFrame.empty(24, 32, 0.0, 0.1))
        stack = FrameStack.from_frames(frames)
        expected = [f.num_events for f in frames]
        assert np.allclose(stack.event_counts(), expected)
        assert stack.event_counts()[2] == 0.0

    def test_empty_stack_queries(self):
        stack = FrameStack.from_frames([SparseFrame.empty(8, 8, 0.0, 0.1)])
        assert stack.densities()[0] == 0.0
        assert stack.event_counts()[0] == 0.0


class TestSegmentedMerges:
    def test_segment_add_bit_identical_to_reference(self):
        frames = make_frames(n=5)
        assert frames_bit_identical(segment_add(frames), SparseFrame.add_reference(frames))

    def test_segment_add_fractional_values(self):
        # Averaged (non-integer) inputs exercise float accumulation order.
        frames = [f.scale(1.0 / 3.0) for f in make_frames(n=4)]
        assert frames_bit_identical(segment_add(frames), SparseFrame.add_reference(frames))

    def test_segment_average_matches_scaled_add(self):
        frames = make_frames(n=4)
        merged = segment_average(frames)
        expected = SparseFrame.add_reference(frames).scale(1.0 / 4.0)
        assert frames_bit_identical(merged, expected)

    def test_merge_groups_bit_identical_to_per_bucket_add(self):
        frames = make_frames(n=12, nnz=60)
        groups = [frames[0:4], frames[4:6], frames[6:12]]
        stack = FrameStack.merge_groups(groups)
        assert len(stack) == 3
        for view, group in zip(stack.frames(), groups):
            assert frames_bit_identical(view, SparseFrame.add_reference(group))

    def test_merge_groups_average_mode(self):
        frames = make_frames(n=6, nnz=60)
        groups = [frames[0:2], frames[2:6]]
        stack = FrameStack.merge_groups(groups, average=True)
        for view, group in zip(stack.frames(), groups):
            assert frames_bit_identical(view, SparseFrame.average(group))

    def test_merge_groups_single_frame_groups(self):
        frames = make_frames(n=3)
        stack = FrameStack.merge_groups([[f] for f in frames])
        for view, frame in zip(stack.frames(), frames):
            assert frames_bit_identical(view, SparseFrame.add_reference([frame]))

    def test_merge_groups_with_empty_frames(self):
        group = [SparseFrame.empty(24, 32, 0.0, 0.1), random_sparse_frame(seed=7)]
        stack = FrameStack.merge_groups([group])
        assert frames_bit_identical(stack.frame(0), SparseFrame.add_reference(group))

    def test_merge_groups_time_bounds(self):
        frames = make_frames(n=4)
        stack = FrameStack.merge_groups([[frames[2], frames[0]], [frames[3], frames[1]]])
        assert stack.t_starts[0] == frames[0].t_start
        assert stack.t_ends[0] == frames[2].t_end
        assert stack.t_starts[1] == frames[1].t_start
        assert stack.t_ends[1] == frames[3].t_end

    def test_merge_groups_rejects_bad_input(self):
        with pytest.raises(ValueError):
            FrameStack.merge_groups([])
        with pytest.raises(ValueError):
            FrameStack.merge_groups([[]])
        with pytest.raises(ValueError):
            FrameStack.merge_groups(
                [[random_sparse_frame(h=24, w=32)], [random_sparse_frame(h=16, w=16)]]
            )


class TestGroupedReduceKernel:
    def test_empty_input(self):
        keys, pos, neg = _grouped_reduce(
            np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0)
        )
        assert keys.size == pos.size == neg.size == 0

    def test_matches_bincount_accumulation(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 50, 500).astype(np.int64)
        pos = rng.uniform(0, 1, 500)
        neg = rng.uniform(0, 1, 500)
        unique, pos_sum, neg_sum = _grouped_reduce(keys, pos, neg)
        expected_keys, inverse = np.unique(keys, return_inverse=True)
        assert np.array_equal(unique, expected_keys)
        assert np.array_equal(pos_sum, np.bincount(inverse, weights=pos))
        assert np.array_equal(neg_sum, np.bincount(inverse, weights=neg))


class TestJitLayer:
    def test_numba_is_optional(self):
        # The container has no numba: the decorator must be a no-op then.
        @jit_ifnumba
        def plain(x):
            return x + 1

        @jit_ifnumba(cache=True)
        def parametrised(x):
            return x + 2

        assert plain(1) == 2
        assert parametrised(1) == 3
        if not HAS_NUMBA:
            assert plain.__name__ == "plain"
            assert parametrised.__name__ == "parametrised"


def _pipe_echo_worker(conn):
    # Runs in a shard-style worker process: receive a (possibly sliced)
    # stack over the pipe, exercise a vectorized query, echo it back.
    stack = conn.recv()
    conn.send((stack, stack.densities().tolist()))
    conn.close()


class TestSlice:
    def test_slice_views_bit_identical(self):
        stack = FrameStack.from_frames(make_frames(n=6))
        sliced = stack.slice(1, 4)
        assert len(sliced) == 3
        for view, original in zip(sliced.frames(), stack.frames()[1:4]):
            assert frames_bit_identical(view, original)

    def test_slice_is_zero_copy(self):
        stack = FrameStack.from_frames(make_frames(n=6))
        sliced = stack.slice(2, 5)
        assert np.shares_memory(sliced.rows, stack.rows)
        assert np.shares_memory(sliced.pos, stack.pos)
        assert np.shares_memory(sliced.t_starts, stack.t_starts)

    def test_slice_carries_flat_cache_only_when_present(self):
        stack = FrameStack.from_frames(make_frames(n=4))
        assert stack.slice(0, 2)._flat is None  # never computed for the slice
        stack.flat_buffer()
        cached = stack.slice(1, 3)
        assert cached._flat is not None
        assert np.shares_memory(cached._flat, stack._flat)
        assert np.array_equal(cached._flat, cached.slice(0, 2).flat_buffer())

    def test_slice_bounds_checked(self):
        stack = FrameStack.from_frames(make_frames(n=4))
        with pytest.raises(IndexError):
            stack.slice(-1, 2)
        with pytest.raises(IndexError):
            stack.slice(3, 2)
        with pytest.raises(IndexError):
            stack.slice(0, 5)

    def test_empty_slice(self):
        stack = FrameStack.from_frames(make_frames(n=4))
        empty = stack.slice(2, 2)
        assert len(empty) == 0
        assert empty.total_active == 0

    def test_pickled_slice_roundtrips_and_drops_caches(self):
        stack = FrameStack.from_frames(make_frames(n=6))
        stack.flat_buffer()
        stack.densities()
        sliced = stack.slice(1, 5)
        loaded = pickle.loads(pickle.dumps(sliced))
        assert loaded._flat is None and loaded._dens is None
        assert int(loaded.offsets[0]) == 0
        for view, original in zip(loaded.frames(), sliced.frames()):
            assert frames_bit_identical(view, original)
        # Pickling a view serialises only the viewed elements.
        assert len(pickle.dumps(sliced)) < len(pickle.dumps(stack))

    def test_slice_survives_worker_pipe(self):
        # The sharded kernel ships stacks to worker processes over pipes;
        # a slice must arrive intact (rebased offsets, lazily rebuildable
        # caches) and come back intact.
        import multiprocessing

        ctx = multiprocessing.get_context()
        parent, child = ctx.Pipe()
        worker = ctx.Process(target=_pipe_echo_worker, args=(child,))
        worker.start()
        try:
            stack = FrameStack.from_frames(make_frames(n=6))
            sliced = stack.slice(2, 6)
            parent.send(sliced)
            echoed, densities = parent.recv()
        finally:
            worker.join(timeout=30)
            parent.close()
            child.close()
        assert worker.exitcode == 0
        assert densities == sliced.densities().tolist()
        for view, original in zip(echoed.frames(), sliced.frames()):
            assert frames_bit_identical(view, original)


class TestMergeRanges:
    def test_adjacent_ranges_match_merge_groups(self):
        # DSFA buckets partition a contiguous arrival run: the adjacency
        # fast path (single parent slice) must be bit-identical to the
        # per-group frame-view kernel.
        frames = make_frames(n=12, nnz=60)
        stack = FrameStack.from_frames(frames)
        ranges = [(0, 4), (4, 6), (6, 12)]
        merged = stack.merge_ranges(ranges)
        reference = FrameStack.merge_groups([frames[a:b] for a, b in ranges])
        assert len(merged) == len(ranges)
        for view, ref in zip(merged.frames(), reference.frames()):
            assert frames_bit_identical(view, ref)

    def test_non_adjacent_ranges_match_merge_groups(self):
        frames = make_frames(n=10, nnz=60)
        stack = FrameStack.from_frames(frames)
        ranges = [(0, 2), (3, 5), (8, 10)]
        merged = stack.merge_ranges(ranges)
        reference = FrameStack.merge_groups([frames[a:b] for a, b in ranges])
        for view, ref in zip(merged.frames(), reference.frames()):
            assert frames_bit_identical(view, ref)

    def test_average_mode(self):
        frames = make_frames(n=6, nnz=60)
        stack = FrameStack.from_frames(frames)
        ranges = [(0, 2), (2, 6)]
        merged = stack.merge_ranges(ranges, average=True)
        for (a, b), view in zip(ranges, merged.frames()):
            assert frames_bit_identical(view, SparseFrame.average(frames[a:b]))

    def test_single_frame_ranges(self):
        frames = make_frames(n=3)
        stack = FrameStack.from_frames(frames)
        merged = stack.merge_ranges([(i, i + 1) for i in range(3)])
        for view, frame in zip(merged.frames(), frames):
            assert frames_bit_identical(view, SparseFrame.add_reference([frame]))

    def test_time_bounds(self):
        frames = make_frames(n=4)
        stack = FrameStack.from_frames(frames)
        merged = stack.merge_ranges([(0, 3), (3, 4)])
        assert merged.t_starts[0] == frames[0].t_start
        assert merged.t_ends[0] == frames[2].t_end
        assert merged.t_starts[1] == frames[3].t_start

    def test_result_does_not_retain_flat_cache(self):
        # Dispatched batches sit in inference queues; the int64 key column
        # is deliberately dropped (recomputed lazily if ever needed).
        stack = FrameStack.from_frames(make_frames(n=4))
        merged = stack.merge_ranges([(0, 2), (2, 4)])
        assert merged._flat is None

    def test_rejects_bad_ranges(self):
        stack = FrameStack.from_frames(make_frames(n=4))
        with pytest.raises(ValueError):
            stack.merge_ranges([])
        with pytest.raises(ValueError):
            stack.merge_ranges([(2, 2)])
        with pytest.raises(IndexError):
            stack.merge_ranges([(0, 5)])
        with pytest.raises(IndexError):
            stack.merge_ranges([(-1, 2)])
