"""Tests for the columnar FrameStack data plane and its segmented kernels."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.frames import HAS_NUMBA, FrameStack, SparseFrame, jit_ifnumba, segment_add, segment_average
from repro.frames.sparse import _grouped_reduce


def random_sparse_frame(seed=0, h=24, w=32, n_events=200, t_start=0.0, t_end=0.1):
    rng = np.random.default_rng(seed)
    return SparseFrame.from_events(
        rng.integers(0, w, n_events),
        rng.integers(0, h, n_events),
        rng.choice([-1, 1], n_events),
        h,
        w,
        t_start,
        t_end,
    )


def frames_bit_identical(a: SparseFrame, b: SparseFrame) -> bool:
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


def make_frames(n=6, h=24, w=32, nnz=120):
    return [
        random_sparse_frame(seed=i, h=h, w=w, n_events=nnz, t_start=0.1 * i, t_end=0.1 * (i + 1))
        for i in range(n)
    ]


class TestConstruction:
    def test_from_frames_roundtrip(self):
        frames = make_frames()
        stack = FrameStack.from_frames(frames)
        assert len(stack) == stack.num_frames == len(frames)
        assert stack.total_active == sum(f.num_active for f in frames)
        for original, view in zip(frames, stack):
            assert frames_bit_identical(original, view)

    def test_from_frames_keeps_empty_frames(self):
        frames = [
            random_sparse_frame(seed=1, t_start=0.0, t_end=0.1),
            SparseFrame.empty(24, 32, 0.1, 0.2),
            random_sparse_frame(seed=2, t_start=0.2, t_end=0.3),
        ]
        stack = FrameStack.from_frames(frames)
        assert stack.frame(1).num_active == 0
        assert stack.frame(1).t_start == 0.1
        assert list(stack.nnz_counts()) == [f.num_active for f in frames]

    def test_from_frames_rejects_empty_list(self):
        with pytest.raises(ValueError):
            FrameStack.from_frames([])

    def test_from_frames_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            FrameStack.from_frames(
                [random_sparse_frame(h=24, w=32), random_sparse_frame(h=16, w=32)]
            )

    def test_init_validates_offsets(self):
        f = random_sparse_frame()
        n = f.num_active
        good = np.array([0, n], dtype=np.int64)
        FrameStack(f.rows, f.cols, f.pos, f.neg, good, [0.0], [0.1], 24, 32)
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([1, n]), [0.0], [0.1], 24, 32
            )
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([0, n - 1]), [0.0], [0.1], 24, 32
            )
        with pytest.raises(ValueError):
            FrameStack(
                f.rows, f.cols, f.pos, f.neg, np.array([0, n, n - 1, n]),
                [0.0, 0.1, 0.2], [0.1, 0.2, 0.3], 24, 32,
            )

    def test_init_validates_time_columns(self):
        f = random_sparse_frame()
        offsets = np.array([0, f.num_active], dtype=np.int64)
        with pytest.raises(ValueError):
            FrameStack(f.rows, f.cols, f.pos, f.neg, offsets, [0.0, 0.5], [0.1], 24, 32)

    def test_init_validates_bounds(self):
        with pytest.raises(ValueError):
            FrameStack([50], [0], [1.0], [0.0], np.array([0, 1]), [0.0], [0.1], 24, 32)


class TestViews:
    def test_frame_views_are_zero_copy(self):
        stack = FrameStack.from_frames(make_frames())
        view = stack.frame(2)
        assert np.shares_memory(view.rows, stack.rows)
        assert np.shares_memory(view.pos, stack.pos)
        assert np.shares_memory(view.flat_keys(), stack.flat_buffer())

    def test_frame_index_out_of_range(self):
        stack = FrameStack.from_frames(make_frames(n=3))
        with pytest.raises(IndexError):
            stack.frame(3)
        with pytest.raises(IndexError):
            stack.frame(-1)

    def test_view_flat_keys_match_recomputed(self):
        stack = FrameStack.from_frames(make_frames())
        for view in stack.frames():
            expected = view.rows.astype(np.int64) * view.width + view.cols
            assert np.array_equal(view.flat_keys(), expected)

    def test_views_survive_pickling(self):
        # Zero-copy views must pickle standalone (the sharded runtime ships
        # frames through worker pipes) and drop the stack-aliased key cache.
        stack = FrameStack.from_frames(make_frames())
        view = stack.frame(1)
        clone = pickle.loads(pickle.dumps(view))
        assert frames_bit_identical(view, clone)
        assert clone._flat is None


class TestVectorisedQueries:
    def test_densities_match_per_frame_property(self):
        stack = FrameStack.from_frames(make_frames())
        expected = [stack.frame(i).density for i in range(len(stack))]
        assert np.array_equal(stack.densities(), expected)

    def test_event_counts_match_per_frame_property(self):
        frames = make_frames()
        frames.insert(2, SparseFrame.empty(24, 32, 0.0, 0.1))
        stack = FrameStack.from_frames(frames)
        expected = [f.num_events for f in frames]
        assert np.allclose(stack.event_counts(), expected)
        assert stack.event_counts()[2] == 0.0

    def test_empty_stack_queries(self):
        stack = FrameStack.from_frames([SparseFrame.empty(8, 8, 0.0, 0.1)])
        assert stack.densities()[0] == 0.0
        assert stack.event_counts()[0] == 0.0


class TestSegmentedMerges:
    def test_segment_add_bit_identical_to_reference(self):
        frames = make_frames(n=5)
        assert frames_bit_identical(segment_add(frames), SparseFrame.add_reference(frames))

    def test_segment_add_fractional_values(self):
        # Averaged (non-integer) inputs exercise float accumulation order.
        frames = [f.scale(1.0 / 3.0) for f in make_frames(n=4)]
        assert frames_bit_identical(segment_add(frames), SparseFrame.add_reference(frames))

    def test_segment_average_matches_scaled_add(self):
        frames = make_frames(n=4)
        merged = segment_average(frames)
        expected = SparseFrame.add_reference(frames).scale(1.0 / 4.0)
        assert frames_bit_identical(merged, expected)

    def test_merge_groups_bit_identical_to_per_bucket_add(self):
        frames = make_frames(n=12, nnz=60)
        groups = [frames[0:4], frames[4:6], frames[6:12]]
        stack = FrameStack.merge_groups(groups)
        assert len(stack) == 3
        for view, group in zip(stack.frames(), groups):
            assert frames_bit_identical(view, SparseFrame.add_reference(group))

    def test_merge_groups_average_mode(self):
        frames = make_frames(n=6, nnz=60)
        groups = [frames[0:2], frames[2:6]]
        stack = FrameStack.merge_groups(groups, average=True)
        for view, group in zip(stack.frames(), groups):
            assert frames_bit_identical(view, SparseFrame.average(group))

    def test_merge_groups_single_frame_groups(self):
        frames = make_frames(n=3)
        stack = FrameStack.merge_groups([[f] for f in frames])
        for view, frame in zip(stack.frames(), frames):
            assert frames_bit_identical(view, SparseFrame.add_reference([frame]))

    def test_merge_groups_with_empty_frames(self):
        group = [SparseFrame.empty(24, 32, 0.0, 0.1), random_sparse_frame(seed=7)]
        stack = FrameStack.merge_groups([group])
        assert frames_bit_identical(stack.frame(0), SparseFrame.add_reference(group))

    def test_merge_groups_time_bounds(self):
        frames = make_frames(n=4)
        stack = FrameStack.merge_groups([[frames[2], frames[0]], [frames[3], frames[1]]])
        assert stack.t_starts[0] == frames[0].t_start
        assert stack.t_ends[0] == frames[2].t_end
        assert stack.t_starts[1] == frames[1].t_start
        assert stack.t_ends[1] == frames[3].t_end

    def test_merge_groups_rejects_bad_input(self):
        with pytest.raises(ValueError):
            FrameStack.merge_groups([])
        with pytest.raises(ValueError):
            FrameStack.merge_groups([[]])
        with pytest.raises(ValueError):
            FrameStack.merge_groups(
                [[random_sparse_frame(h=24, w=32)], [random_sparse_frame(h=16, w=16)]]
            )


class TestGroupedReduceKernel:
    def test_empty_input(self):
        keys, pos, neg = _grouped_reduce(
            np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0)
        )
        assert keys.size == pos.size == neg.size == 0

    def test_matches_bincount_accumulation(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 50, 500).astype(np.int64)
        pos = rng.uniform(0, 1, 500)
        neg = rng.uniform(0, 1, 500)
        unique, pos_sum, neg_sum = _grouped_reduce(keys, pos, neg)
        expected_keys, inverse = np.unique(keys, return_inverse=True)
        assert np.array_equal(unique, expected_keys)
        assert np.array_equal(pos_sum, np.bincount(inverse, weights=pos))
        assert np.array_equal(neg_sum, np.bincount(inverse, weights=neg))


class TestJitLayer:
    def test_numba_is_optional(self):
        # The container has no numba: the decorator must be a no-op then.
        @jit_ifnumba
        def plain(x):
            return x + 1

        @jit_ifnumba(cache=True)
        def parametrised(x):
            return x + 2

        assert plain(1) == 2
        assert parametrised(1) == 3
        if not HAS_NUMBA:
            assert plain.__name__ == "plain"
            assert parametrised.__name__ == "parametrised"
