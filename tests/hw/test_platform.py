"""Tests for the hardware platform substrate."""

from __future__ import annotations

import pytest

from repro.hw import (
    EnergyModel,
    LatencyModel,
    PEType,
    Platform,
    PlatformProfiler,
    ProcessingElement,
    jetson_orin_nano,
    jetson_xavier_agx,
)
from repro.models import build_network, build_spikeflownet
from repro.nn import LayerKind, LayerSpec, MultiTaskGraph, Precision, TaskSpec


@pytest.fixture(scope="module")
def xavier():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def conv_layer():
    return LayerSpec("conv", LayerKind.CONV2D, 2, 16, 64, 64, activation_sparsity=0.9)


@pytest.fixture(scope="module")
def snn_layer():
    return LayerSpec("lif", LayerKind.CONV_LIF, 2, 16, 64, 64, timesteps=5, activation_sparsity=0.9)


class TestProcessingElement:
    def test_xavier_has_cpu_gpu_dla(self, xavier):
        assert set(xavier.pe_names) >= {"cpu", "gpu", "dla0"}
        assert xavier.gpu().pe_type == PEType.GPU

    def test_dla_has_no_fp32_and_no_snn(self, xavier):
        dla = xavier.pe("dla0")
        assert not dla.supports_precision(Precision.FP32)
        assert not dla.supports_snn
        assert dla.lowest_supported_precision() == Precision.INT8
        assert dla.highest_supported_precision() == Precision.FP16

    def test_effective_throughput_scales_with_precision(self, xavier):
        gpu = xavier.gpu()
        assert gpu.effective_throughput(Precision.INT8) > gpu.effective_throughput(Precision.FP16)
        assert gpu.effective_throughput(Precision.FP16) > gpu.effective_throughput(Precision.FP32)

    def test_unsupported_precision_raises(self, xavier):
        with pytest.raises(ValueError):
            xavier.pe("dla0").effective_throughput(Precision.FP32)

    def test_candidates_for_snn_excludes_dla(self, xavier, snn_layer, conv_layer):
        snn_pes = {pe.name for pe in xavier.candidates_for(snn_layer)}
        conv_pes = {pe.name for pe in xavier.candidates_for(conv_layer)}
        assert "dla0" not in snn_pes
        assert "dla0" in conv_pes

    def test_invalid_pe_parameters(self):
        with pytest.raises(ValueError):
            ProcessingElement("x", PEType.CPU, peak_macs_per_s=0, memory_bandwidth=1e9)
        with pytest.raises(ValueError):
            ProcessingElement("x", PEType.CPU, peak_macs_per_s=1e9, memory_bandwidth=1e9,
                              supported_precisions=())


class TestPlatform:
    def test_transfer_time_zero_within_device(self, xavier):
        assert xavier.transfer_time(1_000_000, "gpu", "gpu") == 0.0

    def test_transfer_time_grows_with_volume(self, xavier):
        small = xavier.transfer_time(1_000, "gpu", "dla0")
        large = xavier.transfer_time(10_000_000, "gpu", "dla0")
        assert large > small > 0.0

    def test_transfer_unknown_device(self, xavier):
        with pytest.raises(KeyError):
            xavier.transfer_time(10, "gpu", "tpu")

    def test_unknown_pe_lookup(self, xavier):
        with pytest.raises(KeyError):
            xavier.pe("npu")

    def test_duplicate_names_rejected(self):
        pe = ProcessingElement("gpu", PEType.GPU, 1e12, 1e11)
        with pytest.raises(ValueError):
            Platform("p", [pe, pe])

    def test_orin_nano_is_smaller(self, xavier):
        nano = jetson_orin_nano()
        assert nano.gpu().peak_macs_per_s < xavier.gpu().peak_macs_per_s
        assert len(nano) < len(xavier)


class TestLatencyModel:
    def test_lower_precision_is_faster(self, xavier, conv_layer):
        model = LatencyModel()
        gpu = xavier.gpu()
        t32 = model.layer_latency(conv_layer, gpu, Precision.FP32).total
        t16 = model.layer_latency(conv_layer, gpu, Precision.FP16).total
        t8 = model.layer_latency(conv_layer, gpu, Precision.INT8).total
        assert t8 <= t16 <= t32

    def test_sparse_execution_faster_for_sparse_layer(self, xavier, conv_layer):
        model = LatencyModel()
        gpu = xavier.gpu()
        dense = model.layer_latency(conv_layer, gpu, Precision.FP16, sparse=False).total
        sparse = model.layer_latency(conv_layer, gpu, Precision.FP16, sparse=True).total
        assert sparse < dense

    def test_sparse_speedup_is_bounded(self, xavier, conv_layer):
        model = LatencyModel(min_sparse_fraction=0.2)
        gpu = xavier.gpu()
        dense = model.layer_latency(conv_layer, gpu, Precision.FP16, sparse=False)
        sparse = model.layer_latency(
            conv_layer, gpu, Precision.FP16, sparse=True, occupancy=1e-6
        )
        assert dense.compute_time / sparse.compute_time <= 1.0 / 0.2 + 1e-6

    def test_gpu_faster_than_cpu_for_heavy_layer(self, xavier):
        # For a compute-heavy layer the GPU wins; for tiny layers the CPU's
        # lower launch overhead can win, which is exactly why NMP maps small
        # layers off the GPU.
        heavy = LayerSpec("conv", LayerKind.CONV2D, 64, 128, 128, 128)
        model = LatencyModel()
        cpu = xavier.pe("cpu")
        gpu = xavier.gpu()
        assert (
            model.layer_latency(heavy, gpu, Precision.FP32).total
            < model.layer_latency(heavy, cpu, Precision.FP32).total
        )

    def test_snn_on_dla_rejected(self, xavier, snn_layer):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.layer_latency(snn_layer, xavier.pe("dla0"), Precision.FP16)

    def test_batching_amortises_overhead(self, xavier, conv_layer):
        model = LatencyModel()
        gpu = xavier.gpu()
        one = model.layer_latency(conv_layer, gpu, Precision.FP16, batch=1).total
        four = model.layer_latency(conv_layer, gpu, Precision.FP16, batch=4).total
        assert four < 4 * one

    def test_network_latency_sums_layers(self, xavier):
        model = LatencyModel()
        net = build_spikeflownet(height=64, width=64)
        total = model.network_latency(net.layers(), xavier.gpu(), Precision.FP16)
        assert total > 0
        per_layer = sum(
            model.layer_latency(l, xavier.gpu(), Precision.FP16).total
            for l in net.layers()
            if l.kind.is_compute
        )
        assert total == pytest.approx(per_layer)

    def test_invalid_model_parameters(self):
        with pytest.raises(ValueError):
            LatencyModel(sustained_fraction=0.0)
        with pytest.raises(ValueError):
            LatencyModel(sparse_overhead=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(min_sparse_fraction=2.0)


class TestEnergyModel:
    def test_energy_positive_and_precision_ordered(self, xavier, conv_layer):
        model = EnergyModel()
        gpu = xavier.gpu()
        e32 = model.layer_energy(conv_layer, gpu, Precision.FP32).total
        e8 = model.layer_energy(conv_layer, gpu, Precision.INT8).total
        assert 0 < e8 < e32

    def test_transfer_energy(self):
        model = EnergyModel()
        assert model.transfer_energy(0) == 0.0
        assert model.transfer_energy(1_000_000) > 0.0

    def test_idle_energy(self, xavier):
        model = EnergyModel()
        idle = model.idle_energy(xavier, "gpu", 1.0)
        assert idle > 0
        with pytest.raises(ValueError):
            model.idle_energy(xavier, "gpu", -1.0)


class TestProfiler:
    def test_profile_covers_all_compute_nodes(self, xavier):
        graph = MultiTaskGraph([TaskSpec(build_network("dotie", 64, 64))])
        table = PlatformProfiler(xavier).profile(graph)
        for node in graph.compute_nodes():
            assert table.options(node)
            assert table.best_latency(node) > 0

    def test_snn_nodes_have_no_dla_entries(self, xavier):
        graph = MultiTaskGraph([TaskSpec(build_network("dotie", 64, 64))])
        table = PlatformProfiler(xavier).profile(graph)
        node = graph.compute_nodes()[0]
        assert not table.has(node, "dla0", Precision.FP16)
        assert table.has(node, "gpu", Precision.FP16)

    def test_unknown_node_lookup_raises(self, xavier):
        graph = MultiTaskGraph([TaskSpec(build_network("dotie", 64, 64))])
        table = PlatformProfiler(xavier).profile(graph)
        with pytest.raises(KeyError):
            table.best_latency("missing.node")
