"""Vectorized DVS event generation vs the dense reference loop.

``DVSCamera._generate_events`` gathers a per-interval active-pixel subset;
``_generate_events_dense`` is the direct transcription of the pixel model
kept as the oracle.  Same seed, same frames → bit-identical event arrays
(values, dtypes, ordering) and identical per-pixel reference state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.camera import DVSCamera, _LOG_EPS
from repro.events.types import SensorGeometry


def _run(method: str, geometry, frames, times, seed=42, steps=4):
    camera = DVSCamera(geometry=geometry, interpolation_steps=steps, seed=seed)
    log_frames = [np.log(np.maximum(f, 0.0) + _LOG_EPS) for f in frames]
    reference = log_frames[0].copy()
    last_event_time = np.full((geometry.height, geometry.width), -np.inf)
    out = getattr(camera, method)(
        log_frames, times, reference, last_event_time, geometry.contrast_threshold
    )
    return out, reference, last_event_time


def _assert_equivalent(geometry, frames, times, seed=42, steps=4):
    vec, ref_v, let_v = _run("_generate_events", geometry, frames, times, seed, steps)
    dense, ref_d, let_d = _run(
        "_generate_events_dense", geometry, frames, times, seed, steps
    )
    for vec_chunks, dense_chunks in zip(vec, dense):
        assert len(vec_chunks) == len(dense_chunks)
        for a, b in zip(vec_chunks, dense_chunks):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)
    # The carried per-pixel state must match too, or a longer sequence
    # would diverge after the compared prefix.
    assert np.array_equal(ref_v, ref_d)
    assert np.array_equal(let_v, let_d)
    return vec


@pytest.fixture
def geometry():
    return SensorGeometry(height=32, width=48)


def _moving_edge_frames(geometry, n=12, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.05, 1.0, (geometry.height, geometry.width))
    frames = []
    for i in range(n):
        frame = base.copy()
        frame[:, (3 * i) % geometry.width : (3 * i) % geometry.width + 5] *= 3.0
        frames.append(frame)
    return frames


class TestVectorizedCamera:
    @pytest.mark.parametrize("steps", [1, 3, 8])
    def test_bit_identical_to_dense_loop(self, geometry, steps):
        frames = _moving_edge_frames(geometry)
        times = np.linspace(0.0, 0.5, len(frames))
        vec = _assert_equivalent(geometry, frames, times, steps=steps)
        assert sum(chunk.size for chunk in vec[0]) > 0  # events actually fired

    def test_bit_identical_under_refractory_period(self):
        geometry = SensorGeometry(height=32, width=48, refractory_period=0.08)
        frames = _moving_edge_frames(geometry, seed=3)
        times = np.linspace(0.0, 0.5, len(frames))
        _assert_equivalent(geometry, frames, times)

    def test_static_scene_emits_nothing_and_draws_no_jitter(self, geometry):
        # Identical frames: the vectorized path must skip whole intervals
        # without touching the rng, exactly like the dense loop.
        frames = [np.full((geometry.height, geometry.width), 0.4)] * 6
        times = np.linspace(0.0, 0.25, len(frames))
        vec = _assert_equivalent(geometry, frames, times)
        assert all(not chunks for chunks in vec)

    def test_simulate_output_matches_dense_end_to_end(self, geometry):
        frames = _moving_edge_frames(geometry, seed=9)
        times = np.linspace(0.0, 0.5, len(frames))
        fast = DVSCamera(geometry=geometry, seed=7).simulate(frames, times)
        slow_camera = DVSCamera(geometry=geometry, seed=7)
        slow_camera._generate_events = slow_camera._generate_events_dense
        slow = slow_camera.simulate(frames, times)
        assert np.array_equal(fast.events.x, slow.events.x)
        assert np.array_equal(fast.events.y, slow.events.y)
        assert np.array_equal(fast.events.t, slow.events.t)
        assert np.array_equal(fast.events.p, slow.events.p)
