"""Tests for dataset generation, noise injection and AER encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events import (
    BackgroundActivityNoise,
    EventDropNoise,
    EventStream,
    HotPixelNoise,
    NoisePipeline,
    SensorGeometry,
    available_sequences,
    decode_aer,
    encode_aer,
    generate_sequence,
    load_aer,
    save_aer,
    stream_from_text,
    stream_to_text,
)


class TestDatasets:
    def test_available_sequences_cover_paper_datasets(self):
        names = available_sequences()
        for expected in [
            "indoor_flying1",
            "indoor_flying2",
            "indoor_flying3",
            "outdoor_day1",
            "town10",
        ]:
            assert expected in names

    def test_unknown_sequence_raises(self):
        with pytest.raises(KeyError):
            generate_sequence("does_not_exist")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            generate_sequence("indoor_flying1", scale=0.0)

    def test_sequence_structure(self, indoor_sequence):
        seq = indoor_sequence
        assert len(seq.events) > 0
        assert len(seq.frames) >= 2
        assert seq.num_intervals == len(seq.frames) - 1
        assert len(seq.ground_truth) == seq.num_intervals
        assert seq.frame_timestamps.shape == (len(seq.frames),)

    def test_sequence_determinism(self):
        a = generate_sequence("calibration_bars", scale=0.15, duration=0.4, seed=3)
        b = generate_sequence("calibration_bars", scale=0.15, duration=0.4, seed=3)
        assert a.events == b.events

    def test_interval_view(self, indoor_sequence):
        view = indoor_sequence.interval(0)
        t0 = indoor_sequence.frames[0].timestamp
        t1 = indoor_sequence.frames[1].timestamp
        assert view.num_intervals == 1
        if len(view.events):
            assert view.events.t_start >= t0
            assert view.events.t_end <= t1

    def test_interval_out_of_range(self, indoor_sequence):
        with pytest.raises(IndexError):
            indoor_sequence.interval(10_000)

    def test_noise_flag_changes_event_count(self):
        clean = generate_sequence("indoor_flying1", scale=0.15, duration=0.4, seed=0, with_noise=False)
        noisy = generate_sequence("indoor_flying1", scale=0.15, duration=0.4, seed=0, with_noise=True)
        assert len(noisy.events) > len(clean.events)

    def test_indoor_flying_is_bursty(self):
        seq = generate_sequence("indoor_flying2", scale=0.2, duration=1.0, seed=0)
        density = seq.events.temporal_density(0.05)
        assert density.max() > 2 * max(np.median(density), 1)


class TestNoise:
    @pytest.fixture()
    def base_stream(self, random_events):
        return random_events

    def test_background_activity_adds_events(self, base_stream):
        noisy = BackgroundActivityNoise(rate_hz=5000.0, seed=0).apply(base_stream)
        assert len(noisy) > len(base_stream)

    def test_background_zero_rate_is_identity(self, base_stream):
        noisy = BackgroundActivityNoise(rate_hz=0.0, seed=0).apply(base_stream)
        assert len(noisy) == len(base_stream)

    def test_hot_pixels_concentrate_events(self, base_stream):
        noisy = HotPixelNoise(num_hot_pixels=2, pixel_rate_hz=5000.0, seed=0).apply(base_stream)
        assert len(noisy) > len(base_stream)
        counts = noisy.events_per_pixel()
        assert counts.max() > base_stream.events_per_pixel().max()

    def test_event_drop_removes_fraction(self, base_stream):
        dropped = EventDropNoise(drop_probability=0.5, seed=0).apply(base_stream)
        assert len(dropped) < len(base_stream)
        assert len(dropped) > 0

    def test_event_drop_zero_probability(self, base_stream):
        dropped = EventDropNoise(drop_probability=0.0, seed=0).apply(base_stream)
        assert len(dropped) == len(base_stream)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BackgroundActivityNoise(rate_hz=-1.0)
        with pytest.raises(ValueError):
            HotPixelNoise(num_hot_pixels=-1)
        with pytest.raises(ValueError):
            EventDropNoise(drop_probability=1.5)

    def test_pipeline_composes(self, base_stream):
        pipeline = NoisePipeline(
            BackgroundActivityNoise(rate_hz=2000.0, seed=0),
            EventDropNoise(drop_probability=0.1, seed=1),
        )
        out = pipeline.apply(base_stream)
        assert isinstance(out, EventStream)
        assert np.all(np.diff(out.t) >= 0)


class TestAER:
    def test_roundtrip_binary(self, random_events):
        data = encode_aer(random_events)
        decoded = decode_aer(data)
        assert len(decoded) == len(random_events)
        assert np.array_equal(decoded.x, random_events.x)
        assert np.array_equal(decoded.y, random_events.y)
        assert np.array_equal(decoded.p, random_events.p)
        # Timestamps survive to microsecond precision.
        assert np.allclose(decoded.t, random_events.t, atol=2e-6)

    def test_roundtrip_empty(self):
        empty = EventStream.empty(SensorGeometry(width=32, height=24))
        decoded = decode_aer(encode_aer(empty))
        assert len(decoded) == 0
        assert decoded.geometry.width == 32

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_aer(b"nonsense")
        with pytest.raises(ValueError):
            decode_aer(b"XXXX" + b"\x00" * 30)

    def test_file_roundtrip(self, tmp_path, random_events):
        path = tmp_path / "events.aer"
        save_aer(random_events, path)
        loaded = load_aer(path)
        assert len(loaded) == len(random_events)

    def test_text_roundtrip(self, random_events):
        subset = random_events.slice_index(0, 100)
        text = stream_to_text(subset)
        parsed = stream_from_text(text, subset.geometry)
        assert len(parsed) == len(subset)
        assert np.array_equal(parsed.x, subset.x)
        assert np.array_equal(parsed.p, subset.p)

    def test_text_ignores_comments_and_blanks(self):
        text = "# comment\n\n0.5 3 4 1\n"
        parsed = stream_from_text(text, SensorGeometry(width=8, height=8))
        assert len(parsed) == 1
        assert parsed.p[0] == 1
