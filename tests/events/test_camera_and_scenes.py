"""Tests for the DVS camera simulator and the synthetic scene generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events import (
    DVSCamera,
    DroneFlightScene,
    DrivingScene,
    MovingBarsScene,
    RotatingDiskScene,
    SensorGeometry,
)


@pytest.fixture(scope="module")
def geometry():
    return SensorGeometry(width=64, height=48)


class TestDVSCamera:
    def test_static_scene_produces_no_events(self, geometry):
        camera = DVSCamera(geometry=geometry, seed=0)
        frame = np.full((48, 64), 0.5)
        out = camera.simulate([frame, frame, frame], [0.0, 0.1, 0.2])
        assert len(out.events) == 0
        assert len(out.frames) == 3

    def test_brightness_increase_gives_positive_events(self, geometry):
        camera = DVSCamera(geometry=geometry, seed=0)
        dark = np.full((48, 64), 0.2)
        bright = dark.copy()
        bright[10:20, 10:20] = 0.9
        out = camera.simulate([dark, bright], [0.0, 0.1])
        assert len(out.events) > 0
        assert np.all(out.events.p == 1)
        assert np.all(out.events.x >= 10) and np.all(out.events.x < 20)
        assert np.all(out.events.y >= 10) and np.all(out.events.y < 20)

    def test_brightness_decrease_gives_negative_events(self, geometry):
        camera = DVSCamera(geometry=geometry, seed=0)
        bright = np.full((48, 64), 0.9)
        dark = bright.copy()
        dark[5:15, 5:15] = 0.2
        out = camera.simulate([bright, dark], [0.0, 0.1])
        assert len(out.events) > 0
        assert np.all(out.events.p == -1)

    def test_larger_contrast_threshold_fewer_events(self):
        geo_low = SensorGeometry(width=64, height=48, contrast_threshold=0.1)
        geo_high = SensorGeometry(width=64, height=48, contrast_threshold=0.4)
        scene = MovingBarsScene(geometry=geo_low, duration=0.3, seed=0).generate()
        out_low = DVSCamera(geometry=geo_low, seed=0).simulate(scene.frames, scene.timestamps)
        out_high = DVSCamera(geometry=geo_high, seed=0).simulate(scene.frames, scene.timestamps)
        assert len(out_high.events) < len(out_low.events)

    def test_timestamps_within_interval(self, geometry):
        scene = MovingBarsScene(geometry=geometry, duration=0.3, seed=0).generate()
        out = DVSCamera(geometry=geometry, seed=0).simulate(scene.frames, scene.timestamps)
        assert out.events.t_start >= 0.0
        assert out.events.t_end <= scene.timestamps[-1] + 0.1

    def test_frame_pairs(self, geometry):
        camera = DVSCamera(geometry=geometry, seed=0)
        frame = np.full((48, 64), 0.5)
        out = camera.simulate([frame, frame, frame], [0.0, 0.1, 0.2])
        pairs = out.frame_pairs()
        assert pairs == [(0.0, 0.1), (pytest.approx(0.1), pytest.approx(0.2))]

    def test_rejects_mismatched_inputs(self, geometry):
        camera = DVSCamera(geometry=geometry)
        frame = np.full((48, 64), 0.5)
        with pytest.raises(ValueError):
            camera.simulate([frame, frame], [0.0])
        with pytest.raises(ValueError):
            camera.simulate([frame], [0.0])
        with pytest.raises(ValueError):
            camera.simulate([frame, np.zeros((10, 10))], [0.0, 0.1])
        with pytest.raises(ValueError):
            camera.simulate([frame, frame], [0.1, 0.1])

    def test_rejects_bad_interpolation_steps(self, geometry):
        with pytest.raises(ValueError):
            DVSCamera(geometry=geometry, interpolation_steps=0)

    def test_deterministic_given_seed(self, geometry):
        scene = MovingBarsScene(geometry=geometry, duration=0.2, seed=0).generate()
        out1 = DVSCamera(geometry=geometry, seed=5).simulate(scene.frames, scene.timestamps)
        out2 = DVSCamera(geometry=geometry, seed=5).simulate(scene.frames, scene.timestamps)
        assert out1.events == out2.events


class TestScenes:
    def test_moving_bars_ground_truth_flow_matches_speed(self, geometry):
        speed = 40.0
        frame_rate = 30.0
        scene = MovingBarsScene(
            geometry=geometry, duration=0.3, frame_rate=frame_rate, speed=speed, seed=0
        ).generate()
        gt = scene.ground_truth[0]
        moving = np.abs(gt.flow[0]) > 0
        assert moving.any()
        expected = speed / frame_rate
        assert np.allclose(np.abs(gt.flow[0][moving]), expected)

    def test_scene_sequence_shapes(self, geometry):
        scene = DrivingScene(geometry=geometry, duration=0.3, seed=1).generate()
        assert len(scene.frames) == scene.timestamps.size
        assert scene.num_intervals == len(scene.frames) - 1
        for frame in scene.frames:
            assert frame.shape == (geometry.height, geometry.width)
        for gt in scene.ground_truth:
            assert gt.flow.shape == (2, geometry.height, geometry.width)
            assert gt.depth.shape == (geometry.height, geometry.width)
            assert gt.segmentation.shape == (geometry.height, geometry.width)

    def test_drone_scene_activity_envelope(self, geometry):
        scene = DroneFlightScene(geometry=geometry, duration=0.5, seed=0)
        assert scene.activity(0.0) == 1.0
        assert scene.activity(scene.burst_period * 0.9) == pytest.approx(0.05)

    def test_drone_scene_is_burstier_than_bars(self, geometry):
        drone = DroneFlightScene(geometry=geometry, duration=1.0, seed=0).generate()
        camera = DVSCamera(geometry=geometry, seed=0)
        out = camera.simulate(drone.frames, drone.timestamps)
        density = out.events.temporal_density(0.05)
        # Bursty: max window count should be much larger than the median.
        assert density.max() > 3 * max(np.median(density), 1)

    def test_rotating_disk_scene_generates_events(self, geometry):
        scene = RotatingDiskScene(geometry=geometry, duration=0.3, seed=0).generate()
        out = DVSCamera(geometry=geometry, seed=0).simulate(scene.frames, scene.timestamps)
        assert len(out.events) > 0

    def test_segmentation_labels_present(self, geometry):
        scene = DrivingScene(geometry=geometry, duration=0.2, seed=1).generate()
        labels = np.unique(scene.ground_truth[0].segmentation)
        assert 0 in labels
        assert labels.size > 1

    def test_depth_finite_on_objects(self, geometry):
        scene = DrivingScene(geometry=geometry, duration=0.2, seed=1).generate()
        depth = scene.ground_truth[0].depth
        assert np.isfinite(depth).any()
        assert np.isinf(depth).any()

    def test_invalid_scene_parameters(self, geometry):
        with pytest.raises(ValueError):
            MovingBarsScene(geometry=geometry, duration=0.0)
        with pytest.raises(ValueError):
            MovingBarsScene(geometry=geometry, frame_rate=0.0)
