"""Tests for repro.events.types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream, SensorGeometry, concatenate_streams


def make_stream(n=100, seed=0, geometry=None):
    geometry = geometry or SensorGeometry(width=32, height=24)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, geometry.width, n)
    y = rng.integers(0, geometry.height, n)
    t = np.sort(rng.uniform(0, 1, n))
    p = rng.choice([-1, 1], n)
    return EventStream(x, y, t, p, geometry)


class TestSensorGeometry:
    def test_defaults_are_davis346(self):
        g = SensorGeometry()
        assert g.resolution == (346, 260)
        assert g.num_pixels == 346 * 260

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            SensorGeometry(width=0, height=10)
        with pytest.raises(ValueError):
            SensorGeometry(width=10, height=-1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SensorGeometry(contrast_threshold=0.0)

    def test_rejects_negative_refractory(self):
        with pytest.raises(ValueError):
            SensorGeometry(refractory_period=-1.0)


class TestEventStreamConstruction:
    def test_empty_stream(self):
        s = EventStream.empty()
        assert len(s) == 0
        assert s.duration == 0.0
        assert s.event_rate == 0.0
        assert s.spatial_density() == 0.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            EventStream(np.zeros(3), np.zeros(2), np.zeros(3), np.ones(3))

    def test_out_of_bounds_rejected(self):
        g = SensorGeometry(width=8, height=8)
        with pytest.raises(ValueError):
            EventStream([10], [0], [0.0], [1], g)
        with pytest.raises(ValueError):
            EventStream([0], [9], [0.0], [1], g)

    def test_bad_polarity_rejected(self):
        g = SensorGeometry(width=8, height=8)
        with pytest.raises(ValueError):
            EventStream([0], [0], [0.0], [3], g)

    def test_unsorted_timestamps_get_sorted(self):
        g = SensorGeometry(width=8, height=8)
        s = EventStream([0, 1, 2], [0, 0, 0], [0.3, 0.1, 0.2], [1, -1, 1], g)
        assert np.all(np.diff(s.t) >= 0)
        assert list(s.x) == [1, 2, 0]

    def test_from_arrays_roundtrip(self):
        s = make_stream(50)
        arr = s.to_array()
        s2 = EventStream.from_arrays(arr, s.geometry)
        assert s2 == s

    def test_from_arrays_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            EventStream.from_arrays(np.zeros((5, 3)))


class TestEventStreamSlicing:
    def test_slice_time_bounds(self):
        s = make_stream(1000)
        sliced = s.slice_time(0.25, 0.75)
        assert np.all(sliced.t >= 0.25)
        assert np.all(sliced.t < 0.75)

    def test_slice_time_full_range_is_identity(self):
        s = make_stream(200)
        assert len(s.slice_time(-1.0, 2.0)) == len(s)

    def test_split_time_partitions_all_events(self):
        s = make_stream(500)
        pieces = s.split_time([0.2, 0.5, 0.9])
        assert sum(len(p) for p in pieces) == len(s)
        assert len(pieces) == 4

    def test_shift_time(self):
        s = make_stream(10)
        shifted = s.shift_time(5.0)
        assert np.allclose(shifted.t, s.t + 5.0)

    def test_polarity_split(self):
        s = make_stream(300)
        pos, neg = s.polarity_split()
        assert len(pos) + len(neg) == len(s)
        assert np.all(pos.p == 1)
        assert np.all(neg.p == -1)

    def test_select_mask(self):
        s = make_stream(100)
        mask = s.x < 10
        sel = s.select(mask)
        assert np.all(sel.x < 10)


class TestEventStreamStatistics:
    def test_spatial_density_bounds(self):
        s = make_stream(5000)
        assert 0.0 < s.spatial_density() <= 1.0

    def test_temporal_density_sums_to_total(self):
        s = make_stream(2000)
        counts = s.temporal_density(0.1)
        assert counts.sum() == len(s)

    def test_temporal_density_rejects_bad_window(self):
        s = make_stream(10)
        with pytest.raises(ValueError):
            s.temporal_density(0.0)

    def test_events_per_pixel_total(self):
        s = make_stream(400)
        counts = s.events_per_pixel()
        assert counts.sum() == len(s)
        assert counts.shape == (s.geometry.height, s.geometry.width)

    def test_event_rate(self):
        g = SensorGeometry(width=8, height=8)
        s = EventStream([0, 1], [0, 0], [0.0, 2.0], [1, 1], g)
        assert s.event_rate == pytest.approx(1.0)


class TestConcatenate:
    def test_concatenate_sorts_by_time(self):
        a = make_stream(100, seed=1)
        b = make_stream(100, seed=2)
        merged = concatenate_streams([a, b])
        assert len(merged) == 200
        assert np.all(np.diff(merged.t) >= 0)

    def test_concatenate_empty_list(self):
        assert len(concatenate_streams([])) == 0

    def test_concatenate_rejects_mixed_geometry(self):
        a = make_stream(10, geometry=SensorGeometry(width=32, height=24))
        b = make_stream(10, geometry=SensorGeometry(width=16, height=16))
        with pytest.raises(ValueError):
            concatenate_streams([a, b])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=10_000),
    window=st.floats(min_value=0.01, max_value=0.5),
)
def test_property_temporal_density_conserves_events(n, seed, window):
    """Property: binning events into time windows never loses or adds events."""
    geometry = SensorGeometry(width=16, height=16)
    rng = np.random.default_rng(seed)
    if n == 0:
        stream = EventStream.empty(geometry)
    else:
        stream = EventStream(
            rng.integers(0, 16, n),
            rng.integers(0, 16, n),
            np.sort(rng.uniform(0, 1, n)),
            rng.choice([-1, 1], n),
            geometry,
        )
    assert stream.temporal_density(window).sum() == len(stream)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=10_000),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_slice_partition(n, seed, cut):
    """Property: slicing at any cut point partitions the stream."""
    geometry = SensorGeometry(width=16, height=16)
    rng = np.random.default_rng(seed)
    stream = EventStream(
        rng.integers(0, 16, n),
        rng.integers(0, 16, n),
        np.sort(rng.uniform(0, 1, n)),
        rng.choice([-1, 1], n),
        geometry,
    )
    left = stream.slice_time(-np.inf, cut)
    right = stream.slice_time(cut, np.inf)
    assert len(left) + len(right) == len(stream)


class TestConcatenateGeometry:
    def test_all_empty_inputs_preserve_geometry(self):
        geometry = SensorGeometry(width=64, height=48)
        merged = concatenate_streams(
            [EventStream.empty(geometry), EventStream.empty(geometry)]
        )
        assert len(merged) == 0
        assert merged.geometry == geometry

    def test_all_empty_inputs_with_mixed_geometry_rejected(self):
        with pytest.raises(ValueError):
            concatenate_streams(
                [
                    EventStream.empty(SensorGeometry(width=64, height=48)),
                    EventStream.empty(SensorGeometry(width=32, height=24)),
                ]
            )

    def test_empty_stream_mixed_with_events_keeps_seed_behaviour(self):
        # Empty inputs are still filtered out before the geometry check.
        stream = make_stream(10)
        merged = concatenate_streams([EventStream.empty(), stream])
        assert len(merged) == 10
        assert merged.geometry == stream.geometry
